#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace facsp::net {

namespace {

std::string describe(const std::string& op, const std::string& target,
                     int err) {
  std::string s = op;
  if (!target.empty()) s += " " + target;
  s += ": ";
  s += std::strerror(err);
  return s;
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw SocketError("resolve", host, EINVAL);
  return addr;
}

}  // namespace

SocketError::SocketError(const std::string& op, const std::string& target,
                         int err)
    : Error(describe(op, target, err)), err_(err) {}

void UniqueFd::reset() noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw SocketError("fcntl(O_NONBLOCK)", "", errno);
}

UniqueFd listen_tcp(const std::string& host, std::uint16_t port,
                    int backlog) {
  const std::string target = host + ":" + std::to_string(port);
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw SocketError("socket", target, errno);
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
    throw SocketError("setsockopt(SO_REUSEADDR)", target, errno);
  sockaddr_in addr = make_addr(host, port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    throw SocketError("bind", target, errno);
  if (::listen(fd.get(), backlog) < 0)
    throw SocketError("listen", target, errno);
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    throw SocketError("getsockname", "", errno);
  return ntohs(addr.sin_port);
}

UniqueFd accept_conn(int listen_fd, bool* exhausted) {
  if (exhausted != nullptr) *exhausted = false;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED)
      return UniqueFd();
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // Out of fds/memory: shed this connection, keep serving the ones we
      // have.  fds free up as timeouts reap connections; until then the
      // level-triggered listener re-reports readability each poll pass.
      if (exhausted != nullptr) *exhausted = true;
      return UniqueFd();
    }
    throw SocketError("accept", "", errno);
  }
  UniqueFd conn(fd);
  // A client that died between accept and setup must not kill the server:
  // setup failures surface as "no connection" and the fd closes.
  try {
    set_nonblocking(fd);
  } catch (const SocketError&) {
    return UniqueFd();
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

UniqueFd connect_tcp(const std::string& host, std::uint16_t port) {
  const std::string target = host + ":" + std::to_string(port);
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw SocketError("socket", target, errno);
  sockaddr_in addr = make_addr(host, port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0)
    throw SocketError("connect", target, errno);
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) throw SocketError("pipe", "", errno);
  read_end = UniqueFd(fds[0]);
  write_end = UniqueFd(fds[1]);
  set_nonblocking(fds[0]);
  set_nonblocking(fds[1]);
}

void WakePipe::poke() noexcept {
  const char b = 1;
  [[maybe_unused]] const ssize_t n = ::write(write_end.get(), &b, 1);
}

void WakePipe::drain() noexcept {
  char buf[64];
  while (::read(read_end.get(), buf, sizeof(buf)) > 0) {
  }
}

}  // namespace facsp::net
