#include "net/server.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <sstream>
#include <unistd.h>

#include "common/expects.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace facsp::net {

namespace {

struct LoopMetrics {
  obs::Counter& accepted;
  obs::Counter& closed;
  obs::Counter& frames_in;
  obs::Counter& frames_out;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& decode_errors;
  obs::Counter& accept_exhausted;
  obs::Counter& orphaned;
  obs::Counter& pauses;
  obs::Counter& timeouts;
  obs::Counter& scrapes;
  obs::Gauge& connections;

  static LoopMetrics& get() {
    obs::Registry& r = obs::Registry::instance();
    static LoopMetrics m{
        r.counter("net.accepted"),      r.counter("net.closed"),
        r.counter("net.frames_in"),     r.counter("net.frames_out"),
        r.counter("net.bytes_in"),      r.counter("net.bytes_out"),
        r.counter("net.decode_errors"), r.counter("net.accept_exhausted"),
        r.counter("net.orphaned_responses"),
        r.counter("net.backpressure_pauses"), r.counter("net.timeouts"),
        r.counter("net.scrapes"),       r.gauge("net.connections"),
    };
    return m;
  }
};

NetServer* g_signal_target = nullptr;

void stop_on_signal(int) {
  // Async-signal-safe: request_stop only writes one byte to a pipe.
  if (g_signal_target != nullptr) g_signal_target->request_stop();
}

}  // namespace

void NetConfig::validate() const {
  if (port < 0 || port > 65535)
    throw ConfigError("net: port must be in [0, 65535]");
  if (telemetry_port < -1 || telemetry_port > 65535)
    throw ConfigError("net: telemetry port must be in [-1, 65535]");
  if (read_buf < kHeaderSize + kMaxPayload)
    throw ConfigError("net: read buffer must hold at least one max frame");
  if (write_buf < kResponseFrameSize || write_high_watermark > write_buf)
    throw ConfigError("net: write buffer/high-watermark sizes are invalid");
  if (pending_cap == 0) throw ConfigError("net: pending cap must be > 0");
  if (!(max_skew_s > 0.0))
    throw ConfigError("net: max skew must be > 0");
  if (read_timeout_s <= 0.0 || write_timeout_s <= 0.0 ||
      idle_timeout_s <= 0.0 || flush_idle_s <= 0.0)
    throw ConfigError("net: timeouts must be > 0");
  if (metrics_interval_s < 0)
    throw ConfigError("net: metrics interval must be >= 0");
  if (metrics_interval_s > 0 && metrics_path.empty())
    throw ConfigError("net: metrics interval needs a metrics path");
}

struct NetServer::Connection {
  UniqueFd fd;
  std::uint64_t id = 0;
  ByteQueue in;
  ByteQueue out;
  double last_read_s = 0.0;      ///< last byte received
  double last_progress_s = 0.0;  ///< last byte written out
  bool open = false;
  bool telemetry = false;
  bool paused = false;    ///< reads disabled (write backlog)
  bool closing = false;   ///< flush out, then close
  bool want_write = false;

  Connection(std::size_t read_cap, std::size_t write_cap)
      : in(read_cap), out(write_cap) {}
};

NetServer::NetServer(const serve::ServerConfig& serve_config,
                     const NetConfig& net)
    : serve_config_(serve_config),
      net_(net),
      service_(serve_config, net.pending_cap, net.reserve_seconds,
               net.max_skew_s) {
  net_.validate();
  poller_ = make_poller(net_.backend);
  listen_fd_ = listen_tcp(net_.host, static_cast<std::uint16_t>(net_.port),
                          net_.backlog);
  if (net_.telemetry_port >= 0)
    telemetry_fd_ = listen_tcp(
        net_.host, static_cast<std::uint16_t>(net_.telemetry_port),
        net_.backlog);

  poller_->add(listen_fd_.get(), /*read=*/true, /*write=*/false);
  if (telemetry_fd_.valid())
    poller_->add(telemetry_fd_.get(), true, false);
  poller_->add(wake_.read_end.get(), true, false);

  by_fd_.resize(256, nullptr);
  by_id_.reserve(256);
  events_.reserve(64);
  scrape_scratch_.reserve(4096);

  if (net_.metrics_interval_s > 0) {
    snapshot_ = std::make_unique<obs::SnapshotWriter>(
        net_.metrics_path, net_.metrics_interval_s, obs::Registry::instance());
  }

  AdmissionService::Callbacks cb;
  cb.on_decision = [this](std::uint64_t conn, const cac::AdmissionRequest& req,
                          const cac::AdmissionDecision& d) {
    std::uint8_t payload[kResponsePayloadSize];
    encode_response(req.id, d, payload);
    queue_frame_to(conn, FrameType::kResponse, payload, sizeof(payload));
  };
  cb.on_dropped = [this](std::uint64_t conn, std::uint64_t request_id) {
    std::uint8_t payload[kDroppedPayloadSize];
    encode_dropped(request_id, payload);
    queue_frame_to(conn, FrameType::kDropped, payload, sizeof(payload));
  };
  service_.set_callbacks(std::move(cb));
  if (snapshot_) {
    service_.set_second_hook(
        [this](std::int64_t second, const serve::TelemetryRow&) {
          snapshot_->on_second(second);
        });
  }
}

NetServer::~NetServer() {
  if (g_signal_target == this) route_signals(nullptr);
}

void NetServer::route_signals(NetServer* server) {
  g_signal_target = server;
  struct sigaction sa{};
  sa.sa_handler = server != nullptr ? stop_on_signal : SIG_DFL;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking syscalls return EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

std::uint16_t NetServer::admission_port() const {
  return local_port(listen_fd_.get());
}

std::uint16_t NetServer::telemetry_port() const {
  return telemetry_fd_.valid() ? local_port(telemetry_fd_.get()) : 0;
}

double NetServer::now_s() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void NetServer::run() {
  running_ = true;
  const double start_wall = now_s();
  double last_sweep = start_wall;
  bool stop_requested = false;

  while (!stop_requested) {
    // Wake at the flush-idle horizon so a quiet wire still closes open
    // batches; the coarse 50 ms floor bounds timer-sweep latency without
    // spinning.
    const int timeout_ms = static_cast<int>(
        std::max(10.0, std::min(50.0, net_.flush_idle_s * 1000.0 / 2.0)));
    poller_->wait(timeout_ms, events_);

    for (const PollEvent& ev : events_) {
      if (ev.fd == wake_.read_end.get()) {
        wake_.drain();
        stop_requested = true;
        continue;
      }
      if (ev.fd == listen_fd_.get()) {
        accept_admission();
        continue;
      }
      if (telemetry_fd_.valid() && ev.fd == telemetry_fd_.get()) {
        accept_telemetry();
        continue;
      }
      Connection* c = ev.fd < static_cast<int>(by_fd_.size())
                          ? by_fd_[static_cast<std::size_t>(ev.fd)]
                          : nullptr;
      if (c == nullptr || !c->open) continue;  // closed earlier this pass
      if (ev.error) {
        close_connection(*c);
        continue;
      }
      if (ev.readable) on_readable(*c);
      if (c->open && ev.writable) on_writable(*c);
    }

    const double now = now_s();
    // Idle flush: no arrival for flush_idle_s with batches open -> decide
    // them now so the tail of a burst is answered promptly.
    if (service_.has_open_batches() && last_submit_wall_ >= 0.0 &&
        now - last_submit_wall_ >= net_.flush_idle_s)
      service_.flush_open_batches();
    if (now - last_sweep >= 0.1) {
      sweep_timeouts(now);
      last_sweep = now;
    }
  }

  drain();
  running_ = false;
}

void NetServer::accept_admission() {
  while (true) {
    bool exhausted = false;
    UniqueFd fd = accept_conn(listen_fd_.get(), &exhausted);
    if (!fd.valid()) {
      if (exhausted && obs::metrics_enabled())
        LoopMetrics::get().accept_exhausted.add(1);
      return;
    }

    Connection* c;
    if (!free_.empty()) {
      c = free_.back();
      free_.pop_back();
    } else {
      slots_.push_back(
          std::make_unique<Connection>(net_.read_buf, net_.write_buf));
      c = slots_.back().get();
    }
    c->in.clear();
    c->out.clear();
    c->id = next_conn_id_++;
    c->open = true;
    c->telemetry = false;
    c->paused = false;
    c->closing = false;
    c->want_write = false;
    c->last_read_s = c->last_progress_s = now_s();

    const int raw = fd.get();
    c->fd = std::move(fd);
    if (raw >= static_cast<int>(by_fd_.size()))
      by_fd_.resize(static_cast<std::size_t>(raw) + 64, nullptr);
    by_fd_[static_cast<std::size_t>(raw)] = c;
    by_id_[c->id] = c;
    poller_->add(raw, /*read=*/true, /*write=*/false);
    ++open_connections_;
    if (obs::metrics_enabled()) {
      LoopMetrics& m = LoopMetrics::get();
      m.accepted.add(1);
      m.connections.set(static_cast<std::int64_t>(open_connections_));
    }
  }
}

void NetServer::accept_telemetry() {
  while (true) {
    bool exhausted = false;
    UniqueFd fd = accept_conn(telemetry_fd_.get(), &exhausted);
    if (!fd.valid()) {
      if (exhausted && obs::metrics_enabled())
        LoopMetrics::get().accept_exhausted.add(1);
      return;
    }

    Connection* c;
    if (!free_.empty()) {
      c = free_.back();
      free_.pop_back();
    } else {
      slots_.push_back(
          std::make_unique<Connection>(net_.read_buf, net_.write_buf));
      c = slots_.back().get();
    }
    c->in.clear();
    c->out.clear();
    c->id = next_conn_id_++;
    c->open = true;
    c->telemetry = true;
    c->paused = false;
    c->closing = true;  // write the scrape, then close
    c->want_write = false;
    c->last_read_s = c->last_progress_s = now_s();

    build_scrape(scrape_scratch_);
    // A scrape larger than the write buffer truncates rather than wedges;
    // with default sizes the registry would need thousands of metrics.
    const std::size_t n =
        std::min(scrape_scratch_.size(), c->out.free_space());
    c->out.append(reinterpret_cast<const std::uint8_t*>(
                      scrape_scratch_.data()),
                  n);

    const int raw = fd.get();
    c->fd = std::move(fd);
    if (raw >= static_cast<int>(by_fd_.size()))
      by_fd_.resize(static_cast<std::size_t>(raw) + 64, nullptr);
    by_fd_[static_cast<std::size_t>(raw)] = c;
    by_id_[c->id] = c;
    poller_->add(raw, /*read=*/false, /*write=*/true);
    c->want_write = true;
    ++open_connections_;
    if (obs::metrics_enabled()) {
      LoopMetrics& m = LoopMetrics::get();
      m.scrapes.add(1);
      m.connections.set(static_cast<std::int64_t>(open_connections_));
    }
    flush_writes(*c);
  }
}

void NetServer::on_readable(Connection& c) {
  const auto read_start = std::chrono::steady_clock::now();
  std::size_t total = 0;
  while (c.open && !c.paused) {
    std::uint8_t* dst = c.in.reserve(c.in.free_space());
    const std::size_t room = c.in.free_space();
    if (dst == nullptr || room == 0) {
      // Full read buffer without a decodable frame: validate_header
      // bounds every frame well below the buffer, so this is a protocol
      // violation, not congestion.
      send_error(c, WireError::kOversized, 0);
      return;
    }
    const ssize_t n = ::read(c.fd.get(), dst, room);
    if (n > 0) {
      c.in.commit(static_cast<std::size_t>(n));
      total += static_cast<std::size_t>(n);
      c.last_read_s = now_s();
      if (!parse_frames(c)) return;  // connection errored/closed
      if (static_cast<std::size_t>(n) < room) break;  // drained the socket
      continue;
    }
    if (n == 0) {  // orderly EOF
      close_connection(c);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    close_connection(c);  // ECONNRESET and friends
    return;
  }
  if (total > 0) {
    if (obs::metrics_enabled()) LoopMetrics::get().bytes_in.add(total);
    if (obs::Tracer::enabled())
      obs::Tracer::record("net", "read", obs::Tracer::to_trace_ns(read_start),
                          obs::Tracer::to_trace_ns(
                              std::chrono::steady_clock::now()) -
                              obs::Tracer::to_trace_ns(read_start),
                          static_cast<std::int64_t>(total));
  }
}

bool NetServer::parse_frames(Connection& c) {
  while (c.open && c.in.size() >= kHeaderSize) {
    const FrameHeader h = decode_header(c.in.data());
    const WireError head_err = validate_header(h);
    if (head_err != WireError::kNone) {
      send_error(c, head_err,
                 head_err == WireError::kOversized
                     ? h.len
                     : static_cast<std::uint32_t>(h.type));
      return false;
    }
    if (c.in.size() < kHeaderSize + h.len) return true;  // partial frame
    const std::uint8_t* payload = c.in.data() + kHeaderSize;

    switch (h.type) {
      case FrameType::kRequest:
        handle_request(c, payload, h.len);
        break;
      case FrameType::kFlush: {
        // Barrier: decide everything buffered, answer, then echo the
        // flush on this connection so the client knows it is all out.
        service_.flush_open_batches();
        queue_frame(c, FrameType::kFlush, nullptr, 0);
        break;
      }
      case FrameType::kResponse:
      case FrameType::kError:
      case FrameType::kDropped:
        // Server-to-client frame types are invalid from a client.
        send_error(c, WireError::kBadType,
                   static_cast<std::uint32_t>(h.type));
        return false;
    }
    // An errored connection (closing) must not keep parsing: the error
    // frame is the last thing it ever receives.
    if (!c.open || c.closing) return false;
    c.in.consume(kHeaderSize + h.len);
    if (obs::metrics_enabled()) LoopMetrics::get().frames_in.add(1);
  }
  return c.open;
}

void NetServer::handle_request(Connection& c, const std::uint8_t* payload,
                               std::size_t len) {
  serve::StampedRequest r;
  const WireError err = decode_request(payload, len, r);
  if (err != WireError::kNone) {
    send_error(c, err, 0);
    return;
  }
  AdmissionService::Submit s;
  try {
    s = service_.submit(c.id, r);
  } catch (const ContractViolation&) {
    // Defense in depth: decode validation should make internal
    // preconditions unreachable from the wire, but if one still trips,
    // the blast radius is this connection — never the process.
    send_error(c, WireError::kBadValue, 0);
    return;
  }
  if (s == AdmissionService::Submit::kReordered) {
    send_error(c, WireError::kTimeOrder, 0);
    return;
  }
  if (s == AdmissionService::Submit::kHorizon) {
    // Detail carries the watermark's second so the client can resync.
    const double w = service_.watermark();
    send_error(c, WireError::kHorizon,
               w < 0.0 ? 0 : static_cast<std::uint32_t>(w));
    return;
  }
  last_submit_wall_ = now_s();
  if (first_submit_wall_ < 0.0) first_submit_wall_ = last_submit_wall_;
}

void NetServer::send_error(Connection& c, WireError code,
                           std::uint32_t detail) {
  if (obs::metrics_enabled()) LoopMetrics::get().decode_errors.add(1);
  std::uint8_t payload[kErrorPayloadSize];
  encode_error(code, detail, payload);
  queue_frame(c, FrameType::kError, payload, sizeof(payload));
  c.closing = true;  // flush the error, then close
  flush_writes(c);
}

void NetServer::queue_frame(Connection& c, FrameType type,
                            const std::uint8_t* payload, std::size_t len) {
  std::uint8_t buf[kHeaderSize + kMaxPayload];
  FrameHeader h;
  h.len = static_cast<std::uint32_t>(len);
  h.type = type;
  encode_header(h, buf);
  if (len > 0) std::memcpy(buf + kHeaderSize, payload, len);
  if (!c.out.append(buf, kHeaderSize + len)) {
    // Response backlog overflowed the hard cap: the peer is not reading.
    // Dropping the connection is the contract; its undecided requests (if
    // any) were already answered into this buffer and are lost with it.
    close_connection(c);
    return;
  }
  if (obs::metrics_enabled()) LoopMetrics::get().frames_out.add(1);
  if (!c.paused && c.out.size() > net_.write_high_watermark) {
    // Backpressure: stop reading this connection until its backlog drains
    // below half the watermark.
    c.paused = true;
    update_interest(c);
    if (obs::metrics_enabled()) LoopMetrics::get().pauses.add(1);
  }
  if (!c.want_write) flush_writes(c);
}

void NetServer::queue_frame_to(std::uint64_t conn_id, FrameType type,
                               const std::uint8_t* payload, std::size_t len) {
  const auto it = by_id_.find(conn_id);
  if (it == by_id_.end() || !it->second->open) {
    // Mid-batch disconnect: the decision outlived its connection.
    if (obs::metrics_enabled()) LoopMetrics::get().orphaned.add(1);
    return;
  }
  queue_frame(*it->second, type, payload, len);
}

void NetServer::flush_writes(Connection& c) {
  const auto write_start = std::chrono::steady_clock::now();
  std::size_t total = 0;
  while (c.open && !c.out.empty()) {
    const ssize_t n = ::write(c.fd.get(), c.out.data(), c.out.size());
    if (n > 0) {
      c.out.consume(static_cast<std::size_t>(n));
      total += static_cast<std::size_t>(n);
      c.last_progress_s = now_s();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    close_connection(c);
    return;
  }
  if (total > 0 && obs::metrics_enabled())
    LoopMetrics::get().bytes_out.add(total);
  if (total > 0 && obs::Tracer::enabled())
    obs::Tracer::record(
        "net", "write", obs::Tracer::to_trace_ns(write_start),
        obs::Tracer::to_trace_ns(std::chrono::steady_clock::now()) -
            obs::Tracer::to_trace_ns(write_start),
        static_cast<std::int64_t>(total));
  if (!c.open) return;
  if (c.out.empty()) {
    if (c.closing) {
      close_connection(c);
      return;
    }
    const bool was_paused = c.paused;
    c.paused = false;  // backlog gone: resume reads
    if (c.want_write || was_paused) {
      c.want_write = false;
      update_interest(c);
    }
  } else {
    bool changed = false;
    if (c.paused && c.out.size() < net_.write_high_watermark / 2) {
      c.paused = false;  // drained below the low watermark: resume reads
      changed = true;
    }
    if (!c.want_write) {
      c.want_write = true;
      changed = true;
    }
    if (changed) update_interest(c);
  }
}

void NetServer::on_writable(Connection& c) { flush_writes(c); }

void NetServer::update_interest(Connection& c) {
  poller_->modify(c.fd.get(), /*read=*/!c.paused && !c.closing,
                  /*write=*/c.want_write);
}

void NetServer::close_connection(Connection& c) {
  if (!c.open) return;
  const int raw = c.fd.get();
  poller_->remove(raw);
  by_fd_[static_cast<std::size_t>(raw)] = nullptr;
  by_id_.erase(c.id);
  c.fd.reset();
  c.open = false;
  c.in.clear();
  c.out.clear();
  free_.push_back(&c);
  --open_connections_;
  if (obs::metrics_enabled()) {
    LoopMetrics& m = LoopMetrics::get();
    m.closed.add(1);
    m.connections.set(static_cast<std::int64_t>(open_connections_));
  }
}

void NetServer::sweep_timeouts(double now) {
  for (const auto& slot : slots_) {
    Connection& c = *slot;
    if (!c.open) continue;
    const double quiet_read = now - c.last_read_s;
    const double quiet_write = now - c.last_progress_s;
    const bool mid_frame = c.in.size() > 0;
    const bool backlogged = !c.out.empty();
    if ((mid_frame && quiet_read > net_.read_timeout_s) ||
        (backlogged && quiet_write > net_.write_timeout_s) ||
        (quiet_read > net_.idle_timeout_s &&
         quiet_write > net_.idle_timeout_s)) {
      if (obs::metrics_enabled()) LoopMetrics::get().timeouts.add(1);
      close_connection(c);
    }
  }
}

void NetServer::build_scrape(std::string& out) const {
  out.clear();
  out += "# facsp-telemetry v1\n";
  out += "# seconds_finalized ";
  out += std::to_string(service_.telemetry().size());
  out += "\n";
  out += serve::kTelemetryCsvHeader;
  if (const serve::TelemetryRow* row = service_.latest_row()) {
    std::ostringstream os;
    serve::write_telemetry_row(*row, os);
    out += os.str();
  }
  out += "# metrics\n";
  if (snapshot_ != nullptr) {
    out += snapshot_->latest();
  } else if (obs::metrics_enabled()) {
    std::ostringstream os;
    obs::Registry::instance().write_csv(os);
    out += os.str();
  }
}

void NetServer::drain() {
  // Stop accepting; the listening sockets close before anything else.
  poller_->remove(listen_fd_.get());
  listen_fd_.reset();
  if (telemetry_fd_.valid()) {
    poller_->remove(telemetry_fd_.get());
    telemetry_fd_.reset();
  }

  // Decide everything buffered and seal the telemetry.
  service_.drain();
  drained_wall_ = now_s();
  if (snapshot_) snapshot_->flush();

  // Best-effort response flush: give peers up to a second to take what
  // is already queued, then close regardless.
  const double deadline = now_s() + 1.0;
  while (now_s() < deadline) {
    bool backlog = false;
    for (const auto& slot : slots_)
      if (slot->open && !slot->out.empty()) backlog = true;
    if (!backlog) break;
    poller_->wait(20, events_);
    for (const PollEvent& ev : events_) {
      Connection* c = ev.fd >= 0 && ev.fd < static_cast<int>(by_fd_.size())
                          ? by_fd_[static_cast<std::size_t>(ev.fd)]
                          : nullptr;
      if (c == nullptr || !c->open) continue;
      if (ev.error) {
        close_connection(*c);
        continue;
      }
      if (ev.writable) on_writable(*c);
    }
  }
  for (const auto& slot : slots_)
    if (slot->open) close_connection(*slot);

  if (!net_.out_prefix.empty()) {
    const serve::ServerResult r = result();
    serve::write_telemetry_csv(r, net_.out_prefix + "_telemetry.csv");
    serve::write_latency_csv(r, net_.out_prefix + "_latency.csv");
    serve::write_summary_json(serve_config_, r,
                              net_.out_prefix + "_summary.json");
  }
}

serve::ServerResult NetServer::result() const {
  serve::ServerResult r = service_.result();
  if (first_submit_wall_ >= 0.0 && drained_wall_ > first_submit_wall_)
    r.wall_s = drained_wall_ - first_submit_wall_;
  return r;
}

}  // namespace facsp::net
