#include "net/frame.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace facsp::net {

namespace {

// Explicit little-endian stores/loads: byte-order-correct on any host, and
// compilers collapse them to plain moves on LE targets.

inline void store_u16(std::uint16_t v, std::uint8_t* p) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_u32(std::uint32_t v, std::uint8_t* p) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void store_u64(std::uint64_t v, std::uint8_t* p) noexcept {
  store_u32(static_cast<std::uint32_t>(v), p);
  store_u32(static_cast<std::uint32_t>(v >> 32), p + 4);
}

inline void store_f64(double v, std::uint8_t* p) noexcept {
  store_u64(std::bit_cast<std::uint64_t>(v), p);
}

inline std::uint16_t load_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

inline double load_f64(const std::uint8_t* p) noexcept {
  return std::bit_cast<double>(load_u64(p));
}

inline std::size_t expected_payload(FrameType t) noexcept {
  switch (t) {
    case FrameType::kRequest:
      return kRequestPayloadSize;
    case FrameType::kResponse:
      return kResponsePayloadSize;
    case FrameType::kError:
      return kErrorPayloadSize;
    case FrameType::kFlush:
      return 0;
    case FrameType::kDropped:
      return kDroppedPayloadSize;
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

const char* wire_error_name(WireError e) noexcept {
  switch (e) {
    case WireError::kNone:
      return "none";
    case WireError::kBadVersion:
      return "bad-version";
    case WireError::kBadType:
      return "bad-type";
    case WireError::kOversized:
      return "oversized";
    case WireError::kBadLength:
      return "bad-length";
    case WireError::kBadEnum:
      return "bad-enum";
    case WireError::kBadValue:
      return "bad-value";
    case WireError::kTimeOrder:
      return "time-order";
    case WireError::kHorizon:
      return "horizon";
  }
  return "unknown";
}

void encode_header(const FrameHeader& h, std::uint8_t* out) {
  store_u32(h.len, out);
  out[4] = static_cast<std::uint8_t>(h.type);
  out[5] = h.version;
  store_u16(h.reserved, out + 6);
}

FrameHeader decode_header(const std::uint8_t* in) {
  FrameHeader h;
  h.len = load_u32(in);
  h.type = static_cast<FrameType>(in[4]);
  h.version = in[5];
  h.reserved = load_u16(in + 6);
  return h;
}

WireError validate_header(const FrameHeader& h) noexcept {
  if (h.version != kProtocolVersion || h.reserved != 0)
    return WireError::kBadVersion;
  // Oversized first: a hostile length must be rejected before anything
  // tries to buffer it, even when the type byte is also garbage.
  if (h.len > kMaxPayload) return WireError::kOversized;
  const std::size_t want = expected_payload(h.type);
  if (want == static_cast<std::size_t>(-1)) return WireError::kBadType;
  if (h.len != want) return WireError::kBadLength;
  return WireError::kNone;
}

void encode_request(const serve::StampedRequest& r, std::uint8_t* out) {
  const cac::AdmissionRequest& q = r.req;
  store_f64(q.now, out + 0);
  store_u64(q.id, out + 8);
  store_f64(q.bandwidth, out + 16);
  store_f64(q.speed_kmh, out + 24);
  store_f64(q.angle_deg, out + 32);
  store_f64(q.distance_m, out + 40);
  store_f64(r.holding_s, out + 48);
  store_f64(q.mobile.position.x, out + 56);
  store_f64(q.mobile.position.y, out + 64);
  store_f64(q.mobile.heading_deg, out + 72);
  out[80] = static_cast<std::uint8_t>(q.service);
  out[81] = static_cast<std::uint8_t>(q.kind);
  out[82] = static_cast<std::uint8_t>(q.priority);
  std::memset(out + 83, 0, 5);
}

WireError decode_request(const std::uint8_t* in, std::size_t len,
                         serve::StampedRequest& out) noexcept {
  if (len != kRequestPayloadSize) return WireError::kBadLength;
  const std::uint8_t service = in[80];
  const std::uint8_t kind = in[81];
  const std::uint8_t priority = in[82];
  if (service > 2) return WireError::kBadEnum;
  if (kind > 1) return WireError::kBadEnum;
  if (priority > 2) return WireError::kBadEnum;

  cac::AdmissionRequest& q = out.req;
  q.now = load_f64(in + 0);
  q.id = load_u64(in + 8);
  q.bandwidth = load_f64(in + 16);
  q.speed_kmh = load_f64(in + 24);
  q.angle_deg = load_f64(in + 32);
  q.distance_m = load_f64(in + 40);
  out.holding_s = load_f64(in + 48);
  q.mobile.position.x = load_f64(in + 56);
  q.mobile.position.y = load_f64(in + 64);
  q.mobile.heading_deg = load_f64(in + 72);
  q.mobile.speed_kmh = q.speed_kmh;
  q.service = static_cast<cellular::ServiceClass>(service);
  q.kind = static_cast<cellular::RequestKind>(kind);
  q.priority = static_cast<cellular::UserPriority>(priority);

  // A non-finite double anywhere poisons batching / expiry arithmetic.
  const double doubles[] = {q.now,          q.bandwidth,
                            q.speed_kmh,    q.angle_deg,
                            q.distance_m,   out.holding_s,
                            q.mobile.position.x, q.mobile.position.y,
                            q.mobile.heading_deg};
  for (const double v : doubles)
    if (!std::isfinite(v)) return WireError::kBadValue;
  if (q.now < 0.0 || out.holding_s < 0.0) return WireError::kBadValue;
  // An absurd arrival time would wedge the server finalizing empty seconds
  // (and overflow the double->int64 second cast); a non-positive bandwidth
  // would trip BaseStation::allocate's precondition downstream.
  if (q.now > kMaxArrivalS) return WireError::kBadValue;
  if (q.bandwidth <= 0.0) return WireError::kBadValue;
  return WireError::kNone;
}

void encode_response(std::uint64_t id, const cac::AdmissionDecision& d,
                     std::uint8_t* out) {
  store_u64(id, out + 0);
  store_f64(d.score, out + 8);
  out[16] = d.admitted ? 1 : 0;
  out[17] = static_cast<std::uint8_t>(d.verdict);
  std::memset(out + 18, 0, 6);
}

WireError decode_response(const std::uint8_t* in, std::size_t len,
                          ResponseFrame& out) noexcept {
  if (len != kResponsePayloadSize) return WireError::kBadLength;
  out.id = load_u64(in + 0);
  out.score = load_f64(in + 8);
  if (in[16] > 1) return WireError::kBadValue;
  out.admitted = in[16] != 0;
  out.verdict = in[17];
  if (out.verdict > 4) return WireError::kBadEnum;
  return WireError::kNone;
}

void encode_error(WireError code, std::uint32_t detail, std::uint8_t* out) {
  store_u32(static_cast<std::uint32_t>(code), out + 0);
  store_u32(detail, out + 4);
}

WireError decode_error(const std::uint8_t* in, std::size_t len,
                       ErrorFrame& out) noexcept {
  if (len != kErrorPayloadSize) return WireError::kBadLength;
  out.code = static_cast<WireError>(load_u32(in + 0));
  out.detail = load_u32(in + 4);
  return WireError::kNone;
}

void encode_dropped(std::uint64_t id, std::uint8_t* out) {
  store_u64(id, out);
}

WireError decode_dropped(const std::uint8_t* in, std::size_t len,
                         std::uint64_t& id) noexcept {
  if (len != kDroppedPayloadSize) return WireError::kBadLength;
  id = load_u64(in);
  return WireError::kNone;
}

}  // namespace facsp::net
