// Readiness polling behind one interface: epoll on Linux, poll(2)
// everywhere.  Both backends are level-triggered — the event loop re-arms
// nothing and simply drains what it can each pass; a fd with unread bytes
// or writable space reports ready again on the next wait.
//
// The poll backend is not merely a portability fallback: the test suite
// runs every event-loop test against BOTH backends on Linux, so the
// portable path stays correct instead of rotting behind the #ifdef.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace facsp::net {

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error/hangup.  The owner should read (to collect a pending error or
  /// EOF) and close.
  bool error = false;
};

class Poller {
 public:
  virtual ~Poller() = default;

  /// Register `fd` with the given interest set.  fd must not already be
  /// registered.
  virtual void add(int fd, bool read, bool write) = 0;
  /// Change the interest set of a registered fd.
  virtual void modify(int fd, bool read, bool write) = 0;
  /// Deregister; must be called before the fd is closed.
  virtual void remove(int fd) = 0;

  /// Wait up to timeout_ms (-1 = forever) and fill `out` (cleared first)
  /// with ready fds.  Returns the event count; EINTR reports as 0 events.
  virtual std::size_t wait(int timeout_ms, std::vector<PollEvent>& out) = 0;

  virtual const char* name() const noexcept = 0;
};

enum class PollBackend {
  kAuto,   ///< epoll where available, else poll
  kEpoll,  ///< throws facsp::ConfigError when the platform lacks epoll
  kPoll,
};

bool epoll_available() noexcept;

std::unique_ptr<Poller> make_poller(PollBackend backend = PollBackend::kAuto);

}  // namespace facsp::net
