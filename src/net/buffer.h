// Bounded byte queue for connection I/O.
//
// A flat buffer with head/tail cursors: the readable region is always
// contiguous (frame decoding never straddles a wrap), appends compact with
// one memmove when the tail hits capacity, and capacity is fixed at
// construction — the queue never reallocates after that, which is what
// keeps the socket serve path allocation-free and gives backpressure a
// hard edge: append() refuses bytes that don't fit instead of growing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace facsp::net {

class ByteQueue {
 public:
  explicit ByteQueue(std::size_t capacity) : buf_(capacity) {}

  std::size_t capacity() const noexcept { return buf_.size(); }
  std::size_t size() const noexcept { return tail_ - head_; }
  bool empty() const noexcept { return head_ == tail_; }
  std::size_t free_space() const noexcept { return capacity() - size(); }

  /// Append `n` bytes; returns false (and appends nothing) when they do
  /// not fit — all-or-nothing, so a frame is never half-queued.
  bool append(const std::uint8_t* data, std::size_t n);

  /// Contiguous readable region.
  const std::uint8_t* data() const noexcept { return buf_.data() + head_; }
  void consume(std::size_t n) noexcept;

  /// Writable tail region for readv-style fills: reserve(n) compacts if
  /// needed and returns a pointer to >= min(n, free_space()) bytes (null
  /// when the queue is full); commit(k) publishes k bytes written there.
  std::uint8_t* reserve(std::size_t n) noexcept;
  std::size_t writable() const noexcept { return free_space(); }
  void commit(std::size_t n) noexcept { tail_ += n; }

  void clear() noexcept { head_ = tail_ = 0; }

 private:
  void compact() noexcept;

  std::vector<std::uint8_t> buf_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
};

}  // namespace facsp::net
