#include "net/buffer.h"

#include <cstring>

namespace facsp::net {

void ByteQueue::compact() noexcept {
  if (head_ == 0) return;
  const std::size_t n = size();
  if (n > 0) std::memmove(buf_.data(), buf_.data() + head_, n);
  head_ = 0;
  tail_ = n;
}

bool ByteQueue::append(const std::uint8_t* data, std::size_t n) {
  if (n > free_space()) return false;
  if (buf_.size() - tail_ < n) compact();
  std::memcpy(buf_.data() + tail_, data, n);
  tail_ += n;
  return true;
}

void ByteQueue::consume(std::size_t n) noexcept {
  head_ += n;
  if (head_ == tail_) head_ = tail_ = 0;  // cheap reset to the front
}

std::uint8_t* ByteQueue::reserve(std::size_t n) noexcept {
  if (free_space() == 0) return nullptr;
  if (buf_.size() - tail_ < n) compact();
  return buf_.data() + tail_;
}

}  // namespace facsp::net
