// The socket front-end: a single-threaded non-blocking event loop (epoll
// on Linux, poll elsewhere — level-triggered either way) hosting
//
//   * the admission port — length-prefixed binary frames (net/frame.h)
//     from any number of connections, accumulated across connections into
//     the serving loop's batching windows by AdmissionService and answered
//     through the zero-alloc decide_batch path.  Malformed input gets one
//     typed error frame and a close, never a crash.
//
//   * the telemetry port — connect, receive a plaintext scrape (latest
//     finalized telemetry row in the exact CSV encoding, plus the metrics
//     registry snapshot), connection closes.  `nc host port` is a client.
//
// Robustness model:
//   * bounded per-connection buffers: reads stop (backpressure) while a
//     connection's response backlog sits above the write high watermark,
//     and resume when it drains below half of it;
//   * a global pending cap sheds the oldest undecided request
//     (AdmissionService, kDropped frame, counted in the registry);
//   * per-connection timeouts: a stalled partial frame (read), an
//     undrained response backlog (write), or a silent connection (idle)
//     each reap the connection on the timer sweep;
//   * graceful drain on request_stop() — the signal handlers write one
//     byte to a wake pipe — stops accepting, decides everything buffered,
//     seals the telemetry, pushes the remaining responses out briefly,
//     and (when configured) writes the telemetry/latency/summary files.
//
// Steady-state serving allocates nothing: connections and their buffers
// come from a free pool (the first accept of a slot allocates, reuse
// doesn't), frames decode on the stack, and the service's buffers are
// pre-reserved.  bench_net.cc audits the whole loopback path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/admission_service.h"
#include "net/buffer.h"
#include "net/frame.h"
#include "net/poller.h"
#include "net/socket.h"
#include "obs/snapshot.h"

namespace facsp::net {

struct NetConfig {
  std::string host = "127.0.0.1";
  /// Admission port; 0 binds an ephemeral port (read admission_port()).
  int port = 0;
  /// Telemetry scrape port; -1 disables, 0 ephemeral.
  int telemetry_port = -1;
  int backlog = 64;

  std::size_t read_buf = 64 * 1024;
  std::size_t write_buf = 256 * 1024;
  /// Pause reading a connection whose pending responses exceed this.
  std::size_t write_high_watermark = 192 * 1024;

  /// Global cap on undecided requests (drop-oldest beyond it).
  std::size_t pending_cap = 8192;

  /// Max simulated seconds an arrival may run ahead of the watermark;
  /// further gets a `horizon` error (see AdmissionService).
  double max_skew_s = AdmissionService::kDefaultMaxSkewS;

  double read_timeout_s = 30.0;   ///< partial frame stalled this long
  double write_timeout_s = 30.0;  ///< backlog made no progress this long
  double idle_timeout_s = 300.0;  ///< no traffic at all this long
  /// Close open batches after this much wall-clock quiet, so the last
  /// requests of a burst are not stranded waiting for the next arrival.
  double flush_idle_s = 0.05;

  /// Flush the metrics registry every this many finalized simulated
  /// seconds to `metrics_path` (0 = off).  The scrape endpoint serves the
  /// latest flushed buffer either way.
  std::int64_t metrics_interval_s = 0;
  std::string metrics_path;

  /// Telemetry row / latency reservation horizon (simulated seconds).
  std::size_t reserve_seconds = 4096;

  PollBackend backend = PollBackend::kAuto;

  /// On drain, write <out_prefix>_telemetry.csv / _latency.csv /
  /// _summary.json like the in-process server (empty = skip).
  std::string out_prefix;

  void validate() const;  ///< throws facsp::ConfigError
};

class NetServer {
 public:
  /// Binds both listening sockets (throws SocketError with strerror text
  /// on failure) but does not serve yet.
  NetServer(const serve::ServerConfig& serve_config, const NetConfig& net);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t admission_port() const;
  /// 0 when the telemetry port is disabled.
  std::uint16_t telemetry_port() const;

  /// Serve until request_stop(), then drain gracefully.
  void run();

  /// Thread- and async-signal-safe stop request.
  void request_stop() noexcept { wake_.poke(); }

  /// Route SIGINT/SIGTERM to this server's request_stop.  One server at a
  /// time; pass nullptr to restore default handlers.
  static void route_signals(NetServer* server);

  const AdmissionService& service() const noexcept { return service_; }
  /// Merged result (wall_s = first submit to drain).  Valid after run().
  serve::ServerResult result() const;

 private:
  struct Connection;

  void accept_admission();
  void accept_telemetry();
  void on_readable(Connection& c);
  void on_writable(Connection& c);
  bool parse_frames(Connection& c);
  void handle_request(Connection& c, const std::uint8_t* payload,
                      std::size_t len);
  void send_error(Connection& c, WireError code, std::uint32_t detail);
  void queue_frame(Connection& c, FrameType type, const std::uint8_t* payload,
                   std::size_t len);
  void queue_frame_to(std::uint64_t conn_id, FrameType type,
                      const std::uint8_t* payload, std::size_t len);
  void flush_writes(Connection& c);
  void update_interest(Connection& c);
  void close_connection(Connection& c);
  void sweep_timeouts(double now_s);
  void build_scrape(std::string& out) const;
  void drain();
  double now_s() const;

  serve::ServerConfig serve_config_;
  NetConfig net_;
  AdmissionService service_;
  std::unique_ptr<Poller> poller_;
  UniqueFd listen_fd_;
  UniqueFd telemetry_fd_;
  WakePipe wake_;

  /// All connection objects ever created; closed ones park in free_ and
  /// are reused (buffers and all) so steady-state accepts don't allocate
  /// after the connection count's high-water mark.
  std::vector<std::unique_ptr<Connection>> slots_;
  std::vector<Connection*> free_;
  std::vector<Connection*> by_fd_;  ///< index = fd, nullptr when unused
  std::unordered_map<std::uint64_t, Connection*> by_id_;
  std::vector<PollEvent> events_;
  std::uint64_t next_conn_id_ = 1;
  std::size_t open_connections_ = 0;

  std::unique_ptr<obs::SnapshotWriter> snapshot_;
  std::string scrape_scratch_;

  double last_submit_wall_ = -1.0;
  double first_submit_wall_ = -1.0;
  double drained_wall_ = 0.0;
  bool running_ = false;
};

}  // namespace facsp::net
