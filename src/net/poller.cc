#include "net/poller.h"

#include <cerrno>

#include <poll.h>
#ifdef __linux__
#include <sys/epoll.h>
#include <unistd.h>
#endif

#include "common/error.h"
#include "common/expects.h"
#include "net/socket.h"

namespace facsp::net {

namespace {

// --- poll(2) backend -------------------------------------------------------

class PollPoller final : public Poller {
 public:
  PollPoller() { fds_.reserve(64); }

  void add(int fd, bool read, bool write) override {
    FACSP_EXPECTS(fd >= 0);
    FACSP_EXPECTS(index_of(fd) == fds_.size());
    pollfd p{};
    p.fd = fd;
    p.events = events_for(read, write);
    fds_.push_back(p);
  }

  void modify(int fd, bool read, bool write) override {
    const std::size_t i = index_of(fd);
    FACSP_EXPECTS(i < fds_.size());
    fds_[i].events = events_for(read, write);
  }

  void remove(int fd) override {
    const std::size_t i = index_of(fd);
    FACSP_EXPECTS(i < fds_.size());
    fds_[i] = fds_.back();
    fds_.pop_back();
  }

  std::size_t wait(int timeout_ms, std::vector<PollEvent>& out) override {
    out.clear();
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw SocketError("poll", "", errno);
    }
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      PollEvent e;
      e.fd = p.fd;
      e.readable = (p.revents & POLLIN) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(e);
      if (out.size() == static_cast<std::size_t>(n)) break;
    }
    return out.size();
  }

  const char* name() const noexcept override { return "poll"; }

 private:
  static short events_for(bool read, bool write) noexcept {
    short ev = 0;
    if (read) ev |= POLLIN;
    if (write) ev |= POLLOUT;
    return ev;
  }

  std::size_t index_of(int fd) const noexcept {
    for (std::size_t i = 0; i < fds_.size(); ++i)
      if (fds_[i].fd == fd) return i;
    return fds_.size();
  }

  std::vector<pollfd> fds_;
};

// --- epoll backend ---------------------------------------------------------

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epfd_(::epoll_create1(0)) {
    if (!epfd_.valid()) throw SocketError("epoll_create1", "", errno);
    events_.resize(64);
  }

  void add(int fd, bool read, bool write) override {
    epoll_event ev = event_for(fd, read, write);
    if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) < 0)
      throw SocketError("epoll_ctl(ADD)", "", errno);
    ++registered_;
  }

  void modify(int fd, bool read, bool write) override {
    epoll_event ev = event_for(fd, read, write);
    if (::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) < 0)
      throw SocketError("epoll_ctl(MOD)", "", errno);
  }

  void remove(int fd) override {
    epoll_event ev{};
    if (::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, &ev) < 0)
      throw SocketError("epoll_ctl(DEL)", "", errno);
    --registered_;
  }

  std::size_t wait(int timeout_ms, std::vector<PollEvent>& out) override {
    out.clear();
    if (events_.size() < registered_) events_.resize(registered_);
    const int n = ::epoll_wait(epfd_.get(), events_.data(),
                               static_cast<int>(events_.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return 0;
      throw SocketError("epoll_wait", "", errno);
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ep = events_[static_cast<std::size_t>(i)];
      PollEvent e;
      e.fd = ep.data.fd;
      e.readable = (ep.events & EPOLLIN) != 0;
      e.writable = (ep.events & EPOLLOUT) != 0;
      e.error = (ep.events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(e);
    }
    return out.size();
  }

  const char* name() const noexcept override { return "epoll"; }

 private:
  static epoll_event event_for(int fd, bool read, bool write) noexcept {
    epoll_event ev{};
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    return ev;
  }

  UniqueFd epfd_;
  std::vector<epoll_event> events_;
  std::size_t registered_ = 0;
};
#endif  // __linux__

}  // namespace

bool epoll_available() noexcept {
#ifdef __linux__
  return true;
#else
  return false;
#endif
}

std::unique_ptr<Poller> make_poller(PollBackend backend) {
#ifdef __linux__
  if (backend == PollBackend::kAuto || backend == PollBackend::kEpoll)
    return std::make_unique<EpollPoller>();
#else
  if (backend == PollBackend::kEpoll)
    throw ConfigError("net: epoll backend unavailable on this platform");
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace facsp::net
