// Thin POSIX TCP helpers: bind/listen/accept/connect with errno carried
// into typed exceptions (the CLI prints `strerror(errno)` and exits
// nonzero instead of an unhandled throw), an RAII fd, and the nonblocking
// / NODELAY setup every event-loop socket needs.
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace facsp::net {

/// A socket-layer failure; `what()` is "<op> <target>: <strerror(errno)>".
class SocketError : public Error {
 public:
  SocketError(const std::string& op, const std::string& target, int err);
  int code() const noexcept { return err_; }

 private:
  int err_;
};

/// Owns a file descriptor; closes on destruction.  Movable, not copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& o) noexcept : fd_(o.release()) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Nonblocking listening socket on host:port (SO_REUSEADDR; port 0 binds an
/// ephemeral port — read it back with local_port).  Throws SocketError.
UniqueFd listen_tcp(const std::string& host, std::uint16_t port, int backlog);

/// The port a bound socket actually landed on.
std::uint16_t local_port(int fd);

/// Accept one connection: nonblocking + TCP_NODELAY applied.  Returns an
/// invalid fd when the accept queue is empty (EAGAIN); throws SocketError
/// on real failures (except the transient per-connection ones, which
/// report as empty too — the listener must survive a client that vanished
/// between accept and setup).  Resource exhaustion (EMFILE/ENFILE/
/// ENOBUFS/ENOMEM) is transient too: the connection is shed, not the
/// server; `exhausted` (optional) is set true so callers can count it.
UniqueFd accept_conn(int listen_fd, bool* exhausted = nullptr);

/// Blocking client connect (loadgen, tests).  TCP_NODELAY applied.
UniqueFd connect_tcp(const std::string& host, std::uint16_t port);

void set_nonblocking(int fd);

/// A pipe whose write end is async-signal-safe to poke: signal handlers
/// and other threads write one byte, the event loop polls the read end.
struct WakePipe {
  WakePipe();
  UniqueFd read_end;
  UniqueFd write_end;
  /// Signal-safe: a failed/partial write is ignored (pipe already full is
  /// fine — one pending byte is enough to wake the loop).
  void poke() noexcept;
  void drain() noexcept;
};

}  // namespace facsp::net
