// Wire format of the admission port: length-prefixed little-endian binary
// frames.  Fixed layouts, no varints, no strings — a frame decodes with a
// handful of loads and zero allocation, and every field of the serve trace
// CSV (serve/trace.h) has a slot, so a recorded trace round-trips through
// the socket losslessly.
//
// Frame = 8-byte header + payload:
//
//   offset  size  field
//   0       4     u32  payload length (bytes, little-endian)
//   4       1     u8   frame type (FrameType)
//   5       1     u8   protocol version (kProtocolVersion = 1)
//   6       2     u16  reserved, must be 0
//
// Request payload (type kRequest, 88 bytes) — the 13 serve-trace columns:
//
//   offset  size  field
//   0       8     f64  arrival_s (simulated clock; nondecreasing per
//                      connection stream, enforced server-side; decode
//                      rejects values above kMaxArrivalS, the server
//                      additionally bounds forward skew vs its watermark)
//   8       8     u64  connection id
//   16      8     f64  bandwidth_bu (must be > 0)
//   24      8     f64  speed_kmh
//   32      8     f64  angle_deg
//   40      8     f64  distance_m
//   48      8     f64  holding_s
//   56      8     f64  pos_x_m
//   64      8     f64  pos_y_m
//   72      8     f64  heading_deg
//   80      1     u8   service  (0 text, 1 voice, 2 video)
//   81      1     u8   kind     (0 new, 1 handoff)
//   82      1     u8   priority (0 low, 1 normal, 2 high)
//   83      5     —    reserved, zero on encode, ignored on decode
//
// Response payload (type kResponse, 24 bytes):
//
//   0       8     u64  connection id (echoes the request)
//   8       8     f64  decision score in [-1, 1]
//   16      1     u8   admitted (0/1, post-capacity-re-check)
//   17      1     u8   verdict (cac::Verdict, 0 reject .. 4 accept)
//   18      6     —    reserved, zero
//
// Error payload (type kError, 8 bytes): u32 code (WireError), u32 detail
// (offending value, truncated).  The server sends exactly one error frame
// for the first malformed input on a connection, then closes it.
//
// Flush (type kFlush, 0 bytes): client -> server closes all open admission
// batches and answers everything buffered, then echoes a flush frame on the
// same connection — a completion barrier for clients and the drain path.
//
// Dropped payload (type kDropped, 8 bytes): u64 connection id of a request
// shed by the global pending cap (drop-oldest).  Sent instead of a
// response; counted in the metrics registry.
//
// All multi-byte integers are little-endian regardless of host order;
// doubles are IEEE-754 bit patterns carried as u64.
#pragma once

#include <cstdint>
#include <cstddef>

#include "serve/trace.h"

namespace facsp::net {

inline constexpr std::size_t kHeaderSize = 8;
inline constexpr std::uint8_t kProtocolVersion = 1;
/// Largest payload the server will buffer.  Far above every defined frame
/// (88 bytes) so the format can grow, far below the read buffer so a
/// hostile length prefix can never wedge a connection.
inline constexpr std::uint32_t kMaxPayload = 4096;
/// Largest arrival_s a request frame may carry (2^32 simulated seconds,
/// ~136 years).  A hard sanity cap: it keeps every downstream
/// double->int64 second computation far from overflow regardless of the
/// server's (tighter, watermark-relative) max-skew horizon.
inline constexpr double kMaxArrivalS = 4294967296.0;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kError = 3,
  kFlush = 4,
  kDropped = 5,
};

/// Typed protocol failures (the `code` field of an error frame).
enum class WireError : std::uint32_t {
  kNone = 0,
  kBadVersion = 1,   ///< header version != kProtocolVersion
  kBadType = 2,      ///< unknown frame type, or a type clients must not send
  kOversized = 3,    ///< length prefix > kMaxPayload
  kBadLength = 4,    ///< payload size wrong for the frame type
  kBadEnum = 5,      ///< service/kind/priority byte out of range
  kBadValue = 6,     ///< non-finite double, non-positive bandwidth,
                     ///< negative time/holding, arrival_s > kMaxArrivalS
  kTimeOrder = 7,    ///< arrival_s below the server's watermark
  kHorizon = 8,      ///< arrival_s too far above the watermark (max skew)
};

const char* wire_error_name(WireError e) noexcept;

struct FrameHeader {
  std::uint32_t len = 0;
  FrameType type = FrameType::kRequest;
  std::uint8_t version = kProtocolVersion;
  std::uint16_t reserved = 0;
};

inline constexpr std::size_t kRequestPayloadSize = 88;
inline constexpr std::size_t kResponsePayloadSize = 24;
inline constexpr std::size_t kErrorPayloadSize = 8;
inline constexpr std::size_t kDroppedPayloadSize = 8;

/// Decoded response frame (client side).
struct ResponseFrame {
  std::uint64_t id = 0;
  double score = 0.0;
  bool admitted = false;
  std::uint8_t verdict = 0;
};

/// Decoded error frame (client side).
struct ErrorFrame {
  WireError code = WireError::kNone;
  std::uint32_t detail = 0;
};

// --- header ----------------------------------------------------------------

void encode_header(const FrameHeader& h, std::uint8_t* out /*[kHeaderSize]*/);
/// Raw header decode; no validation beyond field extraction.
FrameHeader decode_header(const std::uint8_t* in /*[kHeaderSize]*/);
/// kBadVersion / kOversized / kBadType / kBadLength (length wrong for a
/// known type) — kNone when the header is acceptable.
WireError validate_header(const FrameHeader& h) noexcept;

// --- payloads --------------------------------------------------------------

void encode_request(const serve::StampedRequest& r,
                    std::uint8_t* out /*[kRequestPayloadSize]*/);
/// kBadLength / kBadEnum / kBadValue — kNone on success.
WireError decode_request(const std::uint8_t* in, std::size_t len,
                         serve::StampedRequest& out) noexcept;

void encode_response(std::uint64_t id, const cac::AdmissionDecision& d,
                     std::uint8_t* out /*[kResponsePayloadSize]*/);
WireError decode_response(const std::uint8_t* in, std::size_t len,
                          ResponseFrame& out) noexcept;

void encode_error(WireError code, std::uint32_t detail,
                  std::uint8_t* out /*[kErrorPayloadSize]*/);
WireError decode_error(const std::uint8_t* in, std::size_t len,
                       ErrorFrame& out) noexcept;

void encode_dropped(std::uint64_t id,
                    std::uint8_t* out /*[kDroppedPayloadSize]*/);
WireError decode_dropped(const std::uint8_t* in, std::size_t len,
                         std::uint64_t& id) noexcept;

/// Full frame (header + payload) sizes, for sizing client buffers.
inline constexpr std::size_t kRequestFrameSize =
    kHeaderSize + kRequestPayloadSize;
inline constexpr std::size_t kResponseFrameSize =
    kHeaderSize + kResponsePayloadSize;
inline constexpr std::size_t kErrorFrameSize = kHeaderSize + kErrorPayloadSize;
inline constexpr std::size_t kDroppedFrameSize =
    kHeaderSize + kDroppedPayloadSize;
inline constexpr std::size_t kFlushFrameSize = kHeaderSize;

}  // namespace facsp::net
