#include "net/admission_service.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expects.h"
#include "obs/metrics.h"

namespace facsp::net {

namespace {

struct ServiceMetrics {
  obs::Counter& submitted;
  obs::Counter& decided;
  obs::Counter& shed;
  obs::Gauge& pending;
  obs::Gauge& active_sessions;

  static ServiceMetrics& get() {
    static ServiceMetrics m{
        obs::Registry::instance().counter("net.submitted"),
        obs::Registry::instance().counter("net.decided"),
        obs::Registry::instance().counter("net.shed"),
        obs::Registry::instance().gauge("net.pending"),
        // Same name (and therefore the same gauge) the in-process serving
        // loop updates — registry parity between the two front-ends.
        obs::Registry::instance().gauge("serve.active_sessions"),
    };
    return m;
  }
};

}  // namespace

AdmissionService::NetShard::NetShard(const serve::ServerConfig& config,
                                     int index)
    : core(config, index) {
  const std::size_t cap = static_cast<std::size_t>(config.batch_max);
  batch.reserve(cap);
  holdings.reserve(cap);
  conns.reserve(cap);
  seqs.reserve(cap);
}

AdmissionService::AdmissionService(const serve::ServerConfig& config,
                                   std::size_t pending_cap,
                                   std::size_t reserve_seconds,
                                   double max_skew_s)
    : config_(config), pending_cap_(pending_cap), max_skew_s_(max_skew_s) {
  config_.validate(/*live=*/false);
  if (pending_cap_ < static_cast<std::size_t>(config_.batch_max))
    throw ConfigError("net: pending cap must be >= batch_max");
  if (!(max_skew_s_ > 0.0) || !std::isfinite(max_skew_s_))
    throw ConfigError("net: max skew must be positive and finite");
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<NetShard>(config_, s));
    shards_.back()->core.reserve_windows(reserve_seconds);
  }
  telemetry_.reserve(reserve_seconds);
  latency_.reserve(reserve_seconds);
}

AdmissionService::Submit AdmissionService::submit(
    std::uint64_t conn, const serve::StampedRequest& r) {
  const double t = r.req.now;
  // After drain the telemetry is sealed; anything further is out of order
  // by definition.
  if (drained_ || t < last_t_) return Submit::kReordered;
  // Bound forward skew before any second arithmetic: accepting t would
  // finalize every second between the watermark and t inline, so an
  // unbounded jump (one hostile frame) would wedge the loop and grow the
  // telemetry rows without limit.  The check also keeps the int64 cast
  // below well inside range.
  if (t - (last_t_ < 0.0 ? 0.0 : last_t_) > max_skew_s_)
    return Submit::kHorizon;

  const std::int64_t S = static_cast<std::int64_t>(std::floor(t));
  if (S > next_second_) {
    // The watermark entered a new second: every open batch belongs to an
    // earlier one (its close time is at most its second's end, which the
    // new arrival has passed), so decide them all, then seal the finished
    // seconds in fixed shard order — the exact merge DecisionServer runs.
    for (const auto& s : shards_)
      if (!s->batch.empty()) process_shard(*s);
    for (std::int64_t sec = next_second_; sec < S; ++sec)
      finalize_second(sec);
    next_second_ = S;
  }
  // Inside the current second, the watermark passing a batch's window
  // boundary closes it: any later same-shard arrival would be past the
  // boundary too, so the contents match serve::batch_end's partition while
  // responses never wait for the next same-shard arrival.
  for (const auto& s : shards_)
    if (!s->batch.empty() && s->close <= t) process_shard(*s);

  last_t_ = t;

  NetShard& shard = *shards_[static_cast<std::size_t>(
      seq_ % static_cast<std::uint64_t>(config_.shards))];
  ++seq_;

  if (pending_ >= pending_cap_) shed_oldest();

  if (shard.batch.empty()) {
    const double w = config_.batch_window_s;
    shard.close = std::min(std::floor(t) + 1.0,
                           (std::floor(t / w) + 1.0) * w);
  }
  shard.batch.push_back(r.req);
  shard.holdings.push_back(r.holding_s);
  shard.conns.push_back(conn);
  shard.seqs.push_back(seq_ - 1);
  ++pending_;
  ++submitted_;
  if (obs::metrics_enabled()) {
    ServiceMetrics& m = ServiceMetrics::get();
    m.submitted.add(1);
    m.pending.set(static_cast<std::int64_t>(pending_));
  }

  if (shard.batch.size() >= static_cast<std::size_t>(config_.batch_max))
    process_shard(shard);
  return Submit::kAccepted;
}

void AdmissionService::process_shard(NetShard& s) {
  const std::size_t n = s.batch.size();
  FACSP_EXPECTS(n > 0);
  const std::span<const cac::AdmissionDecision> decisions =
      s.core.process_batch(
          std::span<const cac::AdmissionRequest>(s.batch.data(), n),
          std::span<const double>(s.holdings.data(), n));
  pending_ -= n;
  decided_ += n;
  if (obs::metrics_enabled()) {
    ServiceMetrics& m = ServiceMetrics::get();
    m.decided.add(n);
    m.pending.set(static_cast<std::int64_t>(pending_));
  }
  if (cb_.on_decision)
    for (std::size_t k = 0; k < n; ++k)
      cb_.on_decision(s.conns[k], s.batch[k], decisions[k]);
  s.batch.clear();
  s.holdings.clear();
  s.conns.clear();
  s.seqs.clear();
}

void AdmissionService::finalize_second(std::int64_t sec) {
  serve::TelemetryRow merged;
  merged.window = sec;
  second_lat_.reset();
  for (const auto& s : shards_) {
    s->core.finish_second(sec);
    FACSP_ENSURES(s->core.window().rows().back().window == sec);
    merged.merge(s->core.window().rows().back());
    second_lat_.merge(s->core.second_hist());
  }
  total_decisions_ += merged.decisions;
  total_admitted_ += merged.admitted;
  telemetry_.push_back(merged);
  if (obs::metrics_enabled())
    ServiceMetrics::get().active_sessions.set(merged.active_sessions);

  serve::LatencyRow lat;
  lat.window = sec;
  lat.samples = second_lat_.count();
  if (lat.samples > 0) {
    lat.p50_ns = second_lat_.percentile_ns(0.50);
    lat.p95_ns = second_lat_.percentile_ns(0.95);
    lat.p99_ns = second_lat_.percentile_ns(0.99);
    lat.p999_ns = second_lat_.percentile_ns(0.999);
    lat.mean_ns = second_lat_.mean_ns();
    lat.max_ns = second_lat_.max_ns();
  }
  latency_.push_back(lat);
  overall_.merge(second_lat_);
  if (second_hook_) second_hook_(sec, merged);
}

void AdmissionService::shed_oldest() {
  std::size_t best = shards_.size();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->batch.empty()) continue;
    if (shards_[i]->seqs.front() < best_seq) {
      best_seq = shards_[i]->seqs.front();
      best = i;
    }
  }
  if (best == shards_.size()) return;  // cap 0 edge: nothing pending
  NetShard& s = *shards_[best];
  const std::uint64_t conn = s.conns.front();
  const std::uint64_t rid = s.batch.front().id;
  // O(batch) erase, only ever paid under overload; the batch stays in
  // arrival order and its close time is unchanged (all members share the
  // dropped request's second).
  s.batch.erase(s.batch.begin());
  s.holdings.erase(s.holdings.begin());
  s.conns.erase(s.conns.begin());
  s.seqs.erase(s.seqs.begin());
  --pending_;
  ++shed_;
  if (obs::metrics_enabled()) {
    ServiceMetrics& m = ServiceMetrics::get();
    m.shed.add(1);
    m.pending.set(static_cast<std::int64_t>(pending_));
  }
  if (cb_.on_dropped) cb_.on_dropped(conn, rid);
}

void AdmissionService::flush_open_batches() {
  for (const auto& s : shards_)
    if (!s->batch.empty()) process_shard(*s);
}

void AdmissionService::drain() {
  if (drained_) return;
  flush_open_batches();
  if (last_t_ >= 0.0) {
    const std::int64_t S = static_cast<std::int64_t>(std::floor(last_t_));
    for (std::int64_t sec = next_second_; sec <= S; ++sec)
      finalize_second(sec);
    next_second_ = S + 1;
  }
  drained_ = true;
}

serve::ServerResult AdmissionService::result() const {
  serve::ServerResult r;
  r.window_s = 1.0;
  r.telemetry = telemetry_;
  r.latency = latency_;
  r.overall = overall_;
  r.total_decisions = total_decisions_;
  r.total_admitted = total_admitted_;
  return r;
}

}  // namespace facsp::net
