// The admission port's decision core, with every socket concern stripped
// out: it takes already-decoded requests tagged with an origin connection,
// batches them into the serving loop's batch_window_s / batch_max windows,
// answers through serve::ShardCore's zero-alloc decide_batch path, and
// emits decisions/drops through callbacks.  tests/net/ drives it directly;
// NetServer wires the callbacks to connection write buffers.
//
// Determinism contract (the socket path's byte-identity guarantee): feed
// the service a recorded trace in trace order — any number of connections,
// one global arrival order — and the telemetry it accumulates is
// byte-identical to DecisionServer replaying the same trace with the same
// (shards, batch_window_s, batch_max):
//
//   * requests are assigned to shards round-robin in receive order
//     (seq % shards), exactly TraceReplayStream's index % shards split;
//   * per shard, batches close by the same greedy rule as
//     serve::batch_end — at the first same-shard arrival past the window
//     boundary, at batch_max, or (new here) as soon as the global arrival
//     watermark passes the boundary, which closes the same batch earlier
//     in wall time but with identical contents, since any later same-shard
//     arrival is at or past the watermark;
//   * a simulated second is finalized — per-shard finish_second, fixed
//     shard-order merge, exactly DecisionServer::run's loop — when the
//     watermark enters a later second, so every batch of a second is
//     decided before its row is sealed;
//   * arrivals below the watermark are rejected (kTimeOrder), never
//     silently reordered, and arrivals more than `max_skew_s` above it
//     are rejected (kHorizon) — advancing the watermark finalizes every
//     second it passes inline, so unbounded forward jumps from one
//     hostile frame would otherwise wedge the event loop.
//
// Overload: `pending_cap` bounds undecided requests across all shards.
// At the cap the OLDEST pending request is shed (on_dropped) to make room
// for the newcomer — drop-oldest keeps the freshest arrivals, the ones
// whose callers are still waiting.  Shedding necessarily forfeits the
// byte-identity above; it is counted in the metrics registry.
//
// Steady state allocates nothing: all per-shard buffers are reserved to
// batch_max at construction and telemetry rows to `reserve_seconds`
// (beyond that horizon the row vectors grow — one realloc per 4096
// simulated seconds by default, not per request).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "serve/decision_loop.h"

namespace facsp::net {

class AdmissionService {
 public:
  struct Callbacks {
    /// One decision per request, invoked in batch order as batches close.
    std::function<void(std::uint64_t conn, const cac::AdmissionRequest& req,
                       const cac::AdmissionDecision& d)>
        on_decision;
    /// A request shed by the pending cap (id = its connection id field).
    std::function<void(std::uint64_t conn, std::uint64_t request_id)>
        on_dropped;
  };

  /// Observer of each finalized second's merged row (snapshot flushing,
  /// scrape freshness).  Runs inline on the submitting thread.
  using SecondHook =
      std::function<void(std::int64_t second, const serve::TelemetryRow&)>;

  /// Default forward-skew horizon: an arrival more than this many simulated
  /// seconds above the watermark is refused (kHorizon) instead of finalizing
  /// that many empty telemetry seconds inline on the submit path.
  static constexpr double kDefaultMaxSkewS = 3600.0;

  AdmissionService(const serve::ServerConfig& config, std::size_t pending_cap,
                   std::size_t reserve_seconds,
                   double max_skew_s = kDefaultMaxSkewS);

  AdmissionService(const AdmissionService&) = delete;
  AdmissionService& operator=(const AdmissionService&) = delete;

  void set_callbacks(Callbacks cb) { cb_ = std::move(cb); }
  void set_second_hook(SecondHook hook) { second_hook_ = std::move(hook); }

  enum class Submit {
    kAccepted,
    /// arrival_s below the watermark — request refused, nothing enqueued.
    kReordered,
    /// arrival_s more than max_skew_s above the watermark — refused,
    /// nothing enqueued, watermark unchanged.
    kHorizon,
  };

  /// Feed one decoded request from connection `conn`.  May close batches,
  /// finalize seconds and shed — every callback fires before this returns.
  Submit submit(std::uint64_t conn, const serve::StampedRequest& r);

  /// Close and decide every open batch (FLUSH frame, idle timer).  Does
  /// not finalize seconds: later arrivals in the same second still join it.
  void flush_open_batches();

  /// End of input: flush, then finalize through the watermark's second so
  /// the last telemetry row is sealed.  Further submits are refused as
  /// kReordered.  Idempotent.
  void drain();
  bool drained() const noexcept { return drained_; }

  std::size_t pending() const noexcept { return pending_; }
  bool has_open_batches() const noexcept { return pending_ > 0; }
  std::uint64_t submitted() const noexcept { return submitted_; }
  std::uint64_t decided() const noexcept { return decided_; }
  std::uint64_t shed_total() const noexcept { return shed_; }
  /// Latest accepted arrival time (-1 before the first accept).
  double watermark() const noexcept { return last_t_; }

  /// Finalized rows so far (grows as the watermark advances).
  const std::vector<serve::TelemetryRow>& telemetry() const noexcept {
    return telemetry_;
  }
  /// Last finalized row, or nullptr before the first finalized second.
  const serve::TelemetryRow* latest_row() const noexcept {
    return telemetry_.empty() ? nullptr : &telemetry_.back();
  }

  /// Merged result in the decision server's shape (telemetry + latency +
  /// overall histogram + totals).  wall_s is left 0 — the event loop owns
  /// the wall clock.  Meaningful once drained.
  serve::ServerResult result() const;

 private:
  struct NetShard {
    serve::ShardCore core;
    // The one open batch (arrival order), reserved to batch_max.
    std::vector<cac::AdmissionRequest> batch;
    std::vector<double> holdings;
    std::vector<std::uint64_t> conns;
    std::vector<std::uint64_t> seqs;
    double close = 0.0;  ///< batch close time; meaningful when !batch.empty()

    NetShard(const serve::ServerConfig& config, int index);
  };

  void process_shard(NetShard& s);
  void finalize_second(std::int64_t sec);
  void shed_oldest();

  serve::ServerConfig config_;
  std::vector<std::unique_ptr<NetShard>> shards_;
  Callbacks cb_;
  SecondHook second_hook_;

  std::size_t pending_cap_;
  double max_skew_s_;
  std::size_t pending_ = 0;
  std::uint64_t seq_ = 0;        ///< global receive-order counter
  std::uint64_t submitted_ = 0;
  std::uint64_t decided_ = 0;
  std::uint64_t shed_ = 0;
  double last_t_ = -1.0;         ///< watermark
  std::int64_t next_second_ = 0; ///< first not-yet-finalized second
  bool drained_ = false;

  std::vector<serve::TelemetryRow> telemetry_;
  std::vector<serve::LatencyRow> latency_;
  serve::LatencyHistogram second_lat_;
  serve::LatencyHistogram overall_;
  std::int64_t total_decisions_ = 0;
  std::int64_t total_admitted_ = 0;
};

}  // namespace facsp::net
