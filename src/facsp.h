// Umbrella header: the full public API of the facsp library.
//
// Include this for exploratory code; production code should include the
// specific module headers it uses (they are all self-contained).
#pragma once

// Support
#include "common/error.h"      // exception hierarchy
#include "common/math_util.h"  // angles, clamping, tolerant comparison

// Generic fuzzy logic
#include "fuzzy/builder.h"      // fluent variable/controller construction
#include "fuzzy/controller.h"   // crisp-in/crisp-out Mamdani FLC
#include "fuzzy/defuzzifier.h"  // centroid, bisector, MOM, ...
#include "fuzzy/inference.h"    // t-norms, s-norms, implication
#include "fuzzy/membership.h"   // triangular / trapezoidal / shoulders
#include "fuzzy/rule_parser.h"  // textual IF-THEN rules
#include "fuzzy/rulebase.h"     // validated rule sets
#include "fuzzy/sugeno.h"       // Takagi-Sugeno extension
#include "fuzzy/variable.h"     // linguistic variables

// Discrete-event simulation
#include "sim/batch_means.h"  // output analysis for correlated streams
#include "sim/event_queue.h"  // stable cancellable event set
#include "sim/rng.h"          // named deterministic streams
#include "sim/simulator.h"    // the run loop
#include "sim/stats.h"        // mean/CI/histogram/time-weighted
#include "sim/timeseries.h"   // figure/CSV rendering

// Cellular network substrate
#include "cellular/basestation.h"  // bandwidth-unit ledger
#include "cellular/connection.h"   // call lifecycle records
#include "cellular/erlang.h"       // Erlang-B / Kaufman-Roberts oracles
#include "cellular/hexgrid.h"      // hex geometry
#include "cellular/metrics.h"      // acceptance / blocking / dropping
#include "cellular/mobility.h"     // mobility model + direction predictor
#include "cellular/network.h"      // disc of cells
#include "cellular/service.h"      // text/voice/video classes, traffic mix
#include "cellular/traffic.h"      // workload generation

// Call admission control
#include "cac/counters.h"       // RTC/NRTC differentiated counters
#include "cac/facs.h"           // previous system (distance-based)
#include "cac/facs_flc.h"       // the paper's FLC1/FLC2 construction
#include "cac/facs_p.h"         // the proposed system (the contribution)
#include "cac/facs_pr.h"        // future work: requesting-connection priority
#include "cac/guard_channel.h"  // classical baselines
#include "cac/policy.h"         // AdmissionPolicy interface
#include "cac/scc.h"            // Shadow Cluster Concept baseline
#include "cac/threshold.h"      // complete partitioning

// Experiments
#include "core/config_io.h"    // scenario files
#include "core/experiment.h"   // replicated sweeps, policy factories
#include "core/paper.h"        // the paper's Sec. 4 scenarios
#include "core/report.h"       // shape checks, CSV
#include "core/scenario.h"     // ScenarioConfig
#include "core/session.h"      // the session driver
