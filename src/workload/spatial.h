// Spatial load maps: *where* requests are generated over the hex grid.
//
// A SpatialLoadMap assigns each cell a relative request weight; the session
// driver multiplies the per-cell baseline N by that weight to get the cell's
// request count.  The centre cell always has weight 1 so the measured
// (centre-cell) workload stays comparable across maps — a map reshapes the
// *surrounding* load, replacing the old all-or-nothing `background_traffic`
// flag:
//
//   center  — paper default: only the centre cell generates requests
//   uniform — every cell generates N requests (old background_traffic=true)
//   hotspot — load decays geometrically with ring distance from the centre
//   highway — full load along an east-west corridor, trickle elsewhere
#pragma once

#include <string_view>

#include "cellular/hexgrid.h"

namespace facsp::workload {

enum class SpatialKind {
  kCenterOnly = 0,
  kUniform = 1,
  kHotspot = 2,
  kHighway = 3,
};

/// Declarative spatial description; round-trips through config_io as
/// `spatial.*` keys.
struct SpatialSpec {
  SpatialKind kind = SpatialKind::kCenterOnly;

  /// hotspot: weight = hotspot_decay^ring (ring = hex distance from centre).
  double hotspot_decay = 0.5;

  /// highway: cells whose centre lies within `highway_halfwidth_m` of the
  /// east-west axis get weight 1; the rest get `highway_off_weight`.
  double highway_halfwidth_m = 2000.0;
  double highway_off_weight = 0.1;

  /// Throws facsp::ConfigError on out-of-range parameters.
  void validate() const;
};

/// "center" | "uniform" | "hotspot" | "highway".
std::string_view spatial_kind_name(SpatialKind kind) noexcept;
/// Inverse of spatial_kind_name; throws facsp::ConfigError on unknown names.
SpatialKind spatial_kind_from_name(std::string_view name);

/// Evaluates a SpatialSpec over cells.  Stateless beyond the spec; cheap to
/// copy.
class SpatialLoadMap {
 public:
  SpatialLoadMap() = default;
  explicit SpatialLoadMap(SpatialSpec spec);

  const SpatialSpec& spec() const noexcept { return spec_; }

  /// Relative request weight of the cell at `coord` whose centre sits at
  /// `cell_center` (world metres).  The centre cell {0,0} always returns 1.
  double weight(const cellular::HexCoord& coord,
                const cellular::Point& cell_center) const noexcept;

  /// Request count for the cell given the baseline n (= the centre cell's
  /// count): round(weight * n).
  int requests(int n, const cellular::HexCoord& coord,
               const cellular::Point& cell_center) const noexcept;

  /// The single weight-to-count rounding rule: round(weight * n).  Used by
  /// requests() and by callers that cached a cell's weight.
  static int scaled_requests(double weight, int n) noexcept;

 private:
  SpatialSpec spec_{};
};

}  // namespace facsp::workload
