#include "workload/spatial.h"

#include <cmath>
#include <string>

#include "common/error.h"

namespace facsp::workload {

void SpatialSpec::validate() const {
  switch (kind) {
    case SpatialKind::kCenterOnly:
    case SpatialKind::kUniform:
      return;
    case SpatialKind::kHotspot:
      if (hotspot_decay < 0.0 || hotspot_decay > 1.0)
        throw ConfigError("spatial: hotspot decay must be in [0, 1]");
      return;
    case SpatialKind::kHighway:
      if (highway_halfwidth_m <= 0.0)
        throw ConfigError("spatial: highway half-width must be > 0");
      if (highway_off_weight < 0.0 || highway_off_weight > 1.0)
        throw ConfigError("spatial: highway off-corridor weight must be in [0, 1]");
      return;
  }
  throw ConfigError("spatial: unknown kind");
}

std::string_view spatial_kind_name(SpatialKind kind) noexcept {
  switch (kind) {
    case SpatialKind::kCenterOnly:
      return "center";
    case SpatialKind::kUniform:
      return "uniform";
    case SpatialKind::kHotspot:
      return "hotspot";
    case SpatialKind::kHighway:
      return "highway";
  }
  return "?";
}

SpatialKind spatial_kind_from_name(std::string_view name) {
  for (SpatialKind k : {SpatialKind::kCenterOnly, SpatialKind::kUniform,
                        SpatialKind::kHotspot, SpatialKind::kHighway})
    if (name == spatial_kind_name(k)) return k;
  throw ConfigError("spatial: unknown kind '" + std::string(name) +
                    "' (center|uniform|hotspot|highway)");
}

SpatialLoadMap::SpatialLoadMap(SpatialSpec spec) : spec_(spec) {
  spec_.validate();
}

double SpatialLoadMap::weight(const cellular::HexCoord& coord,
                              const cellular::Point& cell_center) const noexcept {
  const bool is_center = coord == cellular::HexCoord{0, 0};
  switch (spec_.kind) {
    case SpatialKind::kCenterOnly:
      return is_center ? 1.0 : 0.0;
    case SpatialKind::kUniform:
      return 1.0;
    case SpatialKind::kHotspot: {
      const int ring = cellular::hex_distance(coord, cellular::HexCoord{0, 0});
      return std::pow(spec_.hotspot_decay, ring);
    }
    case SpatialKind::kHighway:
      return std::fabs(cell_center.y) <= spec_.highway_halfwidth_m
                 ? 1.0
                 : spec_.highway_off_weight;
  }
  return is_center ? 1.0 : 0.0;
}

int SpatialLoadMap::requests(int n, const cellular::HexCoord& coord,
                             const cellular::Point& cell_center) const noexcept {
  return scaled_requests(weight(coord, cell_center), n);
}

int SpatialLoadMap::scaled_requests(double weight, int n) noexcept {
  return static_cast<int>(std::lround(weight * static_cast<double>(n)));
}

}  // namespace facsp::workload
