// Time-varying service mix: *what* the requests of a batch ask for.
//
// A MixSchedule is a piecewise-constant override of the base TrafficMix:
// each segment pins the text/voice/video shares from its start offset
// (relative to the batch's t0) until the next segment.  An empty schedule
// means "constant base mix" — the paper's 70/20/10 — and is the default
// everywhere, so existing scenarios are untouched.
//
// Serialized form (config_io key `traffic.mix_schedule`):
//   "none"                                  — empty schedule
//   "0:0.7/0.2/0.1;450:0.4/0.2/0.4"         — segments `start:text/voice/video`
#pragma once

#include <string>
#include <vector>

#include "cellular/service.h"

namespace facsp::workload {

/// One schedule segment: from `start_s` (offset from the batch start) the
/// given mix applies.
struct MixSegment {
  double start_s = 0.0;
  cellular::TrafficMix mix{};

  friend bool operator==(const MixSegment& a, const MixSegment& b) {
    return a.start_s == b.start_s && a.mix.text == b.mix.text &&
           a.mix.voice == b.mix.voice && a.mix.video == b.mix.video;
  }
};

class MixSchedule {
 public:
  /// Empty schedule: the base mix applies for the whole window.
  MixSchedule() = default;
  explicit MixSchedule(std::vector<MixSegment> segments)
      : segments_(std::move(segments)) {}

  bool empty() const noexcept { return segments_.empty(); }
  const std::vector<MixSegment>& segments() const noexcept {
    return segments_;
  }

  /// Index of the segment active at offset `t_s` from the batch start, or
  /// -1 when `base` mix applies (empty schedule, or t before the first
  /// segment).  Exposed so callers can cache per-segment state.
  int segment_at(double t_s) const noexcept;

  /// Active mix at offset `t_s`; `base` applies outside every segment.
  const cellular::TrafficMix& mix_at(
      double t_s, const cellular::TrafficMix& base) const noexcept;

  /// Throws facsp::ConfigError unless segments are strictly increasing in
  /// start_s, start at >= 0, and every mix validates.
  void validate() const;

  /// Parse the serialized form; "none" or "" yields an empty schedule.
  /// Throws facsp::ConfigError on malformed input.
  static MixSchedule from_string(const std::string& text);
  /// Inverse of from_string ("none" for an empty schedule).
  std::string to_string() const;

  friend bool operator==(const MixSchedule& a, const MixSchedule& b) {
    return a.segments_ == b.segments_;
  }

 private:
  std::vector<MixSegment> segments_;
};

}  // namespace facsp::workload
