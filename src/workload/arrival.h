// Arrival processes: *when* the N requests of a batch land inside the
// arrival window.
//
// Every figure of the paper conditions on "N requesting connections", so an
// arrival process here answers a conditional question: given that exactly n
// requests arrive in [t0, t0 + window], how are their arrival times
// distributed?  The default reproduces the paper (i.i.d. uniform times — the
// order statistics of a homogeneous Poisson process conditioned on n
// arrivals); the others reshape the same offered load into bursts, diurnal
// waves or flash crowds without changing the x-axis semantics.
//
// Processes draw every random number from the RandomStream handed to
// generate(), which the caller roots in a hash_seed component stream — so
// any workload stays bit-reproducible across thread counts and runs.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "sim/event_queue.h"  // SimTime
#include "sim/rng.h"

namespace facsp::workload {

enum class ArrivalKind {
  kConditionedUniform = 0,  ///< paper behaviour: uniform over the window
  kOnOff = 1,               ///< two-state MMPP: ON/OFF phases, bursty
  kDiurnal = 2,             ///< sinusoidal intensity, sampled by thinning
  kFlashCrowd = 3,          ///< a batch spike on top of a uniform background
};

/// Declarative description of an arrival process; the kind selects which
/// parameter group applies (the others are ignored).  Round-trips through
/// config_io as `traffic.arrival.*` keys.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kConditionedUniform;

  // --- on-off (two-state Markov-modulated Poisson process) ---------------
  /// Relative arrival intensity while the source is ON / OFF.  Only the
  /// ratio matters: the process is conditioned on n total arrivals.
  double on_rate = 8.0;
  double off_rate = 0.25;
  /// Mean exponential sojourn in the ON / OFF phase (seconds).
  double mean_on_s = 60.0;
  double mean_off_s = 180.0;

  // --- diurnal (non-homogeneous, lambda(t) = 1 + a*sin(2*pi*t/P + phi)) --
  double diurnal_amplitude = 0.8;  ///< a, in [0, 1]
  double diurnal_period_s = 900.0;  ///< P, > 0
  double diurnal_phase_rad = 0.0;   ///< phi

  // --- flash crowd --------------------------------------------------------
  /// Each arrival joins the flash burst with this probability; the rest
  /// spread uniformly over the window.
  double flash_fraction = 0.5;
  /// Burst placement, as offsets from the batch start (clamped into the
  /// window at generation time).
  double flash_start_s = 300.0;
  double flash_duration_s = 30.0;

  /// Throws facsp::ConfigError on out-of-range parameters.
  void validate() const;
};

/// "uniform" | "onoff" | "diurnal" | "flash".
std::string_view arrival_kind_name(ArrivalKind kind) noexcept;
/// Inverse of arrival_kind_name; throws facsp::ConfigError on unknown names.
ArrivalKind arrival_kind_from_name(std::string_view name);

/// Strategy interface: places n arrival times inside one batch window.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  virtual std::string_view name() const noexcept = 0;

  /// Clear `out` and fill it with exactly `n` arrival times in
  /// [t0, t0 + window_s], sorted ascending.  All randomness comes from
  /// `rng`.  Reuses out's capacity: with enough capacity the default
  /// conditioned-uniform process performs no heap allocation.
  virtual void generate(int n, sim::SimTime t0, double window_s,
                        sim::RandomStream& rng,
                        std::vector<sim::SimTime>& out) const = 0;
};

/// Factory over the spec (validates it first).
std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec);

}  // namespace facsp::workload
