#include "workload/arrival.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/expects.h"

namespace facsp::workload {

void ArrivalSpec::validate() const {
  switch (kind) {
    case ArrivalKind::kConditionedUniform:
      return;
    case ArrivalKind::kOnOff:
      if (on_rate <= 0.0 || off_rate < 0.0)
        throw ConfigError("arrival: on_rate must be > 0, off_rate >= 0");
      if (on_rate < off_rate)
        throw ConfigError("arrival: on_rate must be >= off_rate");
      if (mean_on_s <= 0.0 || mean_off_s <= 0.0)
        throw ConfigError("arrival: mean on/off sojourns must be > 0");
      return;
    case ArrivalKind::kDiurnal:
      if (diurnal_amplitude < 0.0 || diurnal_amplitude > 1.0)
        throw ConfigError("arrival: diurnal amplitude must be in [0, 1]");
      if (diurnal_period_s <= 0.0)
        throw ConfigError("arrival: diurnal period must be > 0");
      return;
    case ArrivalKind::kFlashCrowd:
      if (flash_fraction < 0.0 || flash_fraction > 1.0)
        throw ConfigError("arrival: flash fraction must be in [0, 1]");
      if (flash_start_s < 0.0 || flash_duration_s < 0.0)
        throw ConfigError("arrival: flash start/duration must be >= 0");
      return;
  }
  throw ConfigError("arrival: unknown kind");
}

std::string_view arrival_kind_name(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::kConditionedUniform:
      return "uniform";
    case ArrivalKind::kOnOff:
      return "onoff";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kFlashCrowd:
      return "flash";
  }
  return "?";
}

ArrivalKind arrival_kind_from_name(std::string_view name) {
  for (ArrivalKind k :
       {ArrivalKind::kConditionedUniform, ArrivalKind::kOnOff,
        ArrivalKind::kDiurnal, ArrivalKind::kFlashCrowd})
    if (name == arrival_kind_name(k)) return k;
  throw ConfigError("arrival: unknown kind '" + std::string(name) +
                    "' (uniform|onoff|diurnal|flash)");
}

namespace {

/// Paper behaviour: n i.i.d. uniform times over the window, then sort — the
/// order statistics of a homogeneous Poisson process conditioned on n.
/// Draw-for-draw identical to the pre-refactor TrafficGenerator loop.
class ConditionedUniformArrivals final : public ArrivalProcess {
 public:
  std::string_view name() const noexcept override { return "uniform"; }

  void generate(int n, sim::SimTime t0, double window_s,
                sim::RandomStream& rng,
                std::vector<sim::SimTime>& out) const override {
    out.clear();
    for (int i = 0; i < n; ++i) out.push_back(t0 + rng.uniform(0.0, window_s));
    std::sort(out.begin(), out.end());
  }
};

/// Two-state MMPP, conditioned on n arrivals: first simulate the ON/OFF
/// phase path over the window, then draw the n times i.i.d. from the
/// piecewise-constant density proportional to the phase rate (inverse-CDF
/// over the cumulative intensity), then sort.  This is the exact
/// conditional law of the MMPP given n arrivals and the phase path.
class OnOffArrivals final : public ArrivalProcess {
 public:
  explicit OnOffArrivals(const ArrivalSpec& spec) : spec_(spec) {}

  std::string_view name() const noexcept override { return "onoff"; }

  void generate(int n, sim::SimTime t0, double window_s,
                sim::RandomStream& rng,
                std::vector<sim::SimTime>& out) const override {
    out.clear();
    if (n <= 0) return;
    if (window_s <= 0.0) {
      out.assign(static_cast<std::size_t>(n), t0);
      return;
    }

    // Phase path: alternating ON/OFF segments covering [0, window].  The
    // initial phase follows the stationary distribution.
    struct Segment {
      double start;
      double cum_mass;  // cumulative intensity mass up to segment start
      double rate;
    };
    std::vector<Segment> segments;
    const double p_on = spec_.mean_on_s / (spec_.mean_on_s + spec_.mean_off_s);
    bool on = rng.bernoulli(p_on);
    double t = 0.0, mass = 0.0;
    while (t < window_s) {
      const double rate = on ? spec_.on_rate : spec_.off_rate;
      const double sojourn =
          rng.exponential(on ? spec_.mean_on_s : spec_.mean_off_s);
      segments.push_back({t, mass, rate});
      const double len = std::min(sojourn, window_s - t);
      mass += rate * len;
      t += sojourn;
      on = !on;
    }
    if (mass <= 0.0) {  // an all-OFF path with off_rate == 0: fall back to
      out.clear();      // uniform so the batch still carries n requests
      for (int i = 0; i < n; ++i)
        out.push_back(t0 + rng.uniform(0.0, window_s));
      std::sort(out.begin(), out.end());
      return;
    }

    // Inverse CDF over the piecewise-constant cumulative mass.
    for (int i = 0; i < n; ++i) {
      const double u = rng.uniform(0.0, mass);
      // Last segment whose cum_mass <= u.
      std::size_t lo = 0, hi = segments.size() - 1;
      while (lo < hi) {
        const std::size_t mid = (lo + hi + 1) / 2;
        if (segments[mid].cum_mass <= u)
          lo = mid;
        else
          hi = mid - 1;
      }
      const Segment& seg = segments[lo];
      const double within =
          seg.rate > 0.0 ? (u - seg.cum_mass) / seg.rate : 0.0;
      out.push_back(t0 + std::min(seg.start + within, window_s));
    }
    std::sort(out.begin(), out.end());
  }

 private:
  ArrivalSpec spec_;
};

/// Non-homogeneous "diurnal" intensity lambda(t) = 1 + a*sin(2*pi*t/P + phi),
/// sampled by thinning (accept a uniform candidate with probability
/// lambda(t)/lambda_max) — i.i.d. draws from the normalized intensity, the
/// conditional law of the non-homogeneous Poisson process given n arrivals.
class DiurnalArrivals final : public ArrivalProcess {
 public:
  explicit DiurnalArrivals(const ArrivalSpec& spec) : spec_(spec) {}

  std::string_view name() const noexcept override { return "diurnal"; }

  void generate(int n, sim::SimTime t0, double window_s,
                sim::RandomStream& rng,
                std::vector<sim::SimTime>& out) const override {
    out.clear();
    if (n <= 0) return;
    if (window_s <= 0.0) {
      out.assign(static_cast<std::size_t>(n), t0);
      return;
    }
    const double two_pi = 2.0 * 3.14159265358979323846;
    const double lambda_max = 1.0 + spec_.diurnal_amplitude;
    for (int i = 0; i < n; ++i) {
      for (;;) {
        const double t = rng.uniform(0.0, window_s);
        const double lambda =
            1.0 + spec_.diurnal_amplitude *
                      std::sin(two_pi * t / spec_.diurnal_period_s +
                               spec_.diurnal_phase_rad);
        if (rng.uniform(0.0, lambda_max) <= lambda) {
          out.push_back(t0 + t);
          break;
        }
      }
    }
    std::sort(out.begin(), out.end());
  }

 private:
  ArrivalSpec spec_;
};

/// Flash crowd: each arrival joins a short burst with probability
/// flash_fraction, otherwise lands uniformly over the window.  The burst is
/// clamped inside the window so every request stays in [t0, t0 + window].
class FlashCrowdArrivals final : public ArrivalProcess {
 public:
  explicit FlashCrowdArrivals(const ArrivalSpec& spec) : spec_(spec) {}

  std::string_view name() const noexcept override { return "flash"; }

  void generate(int n, sim::SimTime t0, double window_s,
                sim::RandomStream& rng,
                std::vector<sim::SimTime>& out) const override {
    out.clear();
    if (n <= 0) return;
    if (window_s <= 0.0) {
      out.assign(static_cast<std::size_t>(n), t0);
      return;
    }
    const double start = std::min(spec_.flash_start_s, window_s);
    const double duration = std::min(spec_.flash_duration_s, window_s - start);
    for (int i = 0; i < n; ++i) {
      if (rng.bernoulli(spec_.flash_fraction))
        out.push_back(t0 + start + rng.uniform(0.0, duration));
      else
        out.push_back(t0 + rng.uniform(0.0, window_s));
    }
    std::sort(out.begin(), out.end());
  }

 private:
  ArrivalSpec spec_;
};

}  // namespace

std::unique_ptr<ArrivalProcess> make_arrival_process(const ArrivalSpec& spec) {
  spec.validate();
  switch (spec.kind) {
    case ArrivalKind::kConditionedUniform:
      return std::make_unique<ConditionedUniformArrivals>();
    case ArrivalKind::kOnOff:
      return std::make_unique<OnOffArrivals>(spec);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalArrivals>(spec);
    case ArrivalKind::kFlashCrowd:
      return std::make_unique<FlashCrowdArrivals>(spec);
  }
  throw ConfigError("arrival: unknown kind");
}

}  // namespace facsp::workload
