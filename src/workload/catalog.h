// Named scenario catalog: every end-to-end workload the repo knows how to
// run, registered under a stable name so CLIs, tests and benches can build
// it without recompiling (`scenario_runner --scenario bursty-onoff ...`).
//
// Built-ins (see docs/workloads.md for parameters):
//   paper-grid    — the paper's Sec. 4 baseline (what every figure measures)
//   bursty-onoff  — same load reshaped into ON/OFF (MMPP) bursts
//   flash-crowd   — half the batch lands in a 30 s spike
//   diurnal       — sinusoidal "daily" wave over the arrival window
//   hotspot-ring2 — 19-cell grid, load decaying away from the centre
//   highway       — 19-cell grid, fast users along an east-west corridor
//   mix-shift     — service mix turns video-heavy mid-window
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.h"

namespace facsp::workload {

class ScenarioCatalog {
 public:
  using Builder = std::function<core::ScenarioConfig()>;

  struct Entry {
    std::string name;
    std::string description;
    Builder build;
  };

  /// The process-wide catalog, with the built-in scenarios pre-registered.
  static ScenarioCatalog& instance();

  /// Register a scenario.  Throws facsp::ConfigError on duplicate names or
  /// an empty name/builder.
  void add(std::string name, std::string description, Builder builder);

  /// Entries in registration order (built-ins first).
  const std::vector<Entry>& entries() const noexcept { return entries_; }

  const Entry* find(std::string_view name) const noexcept;
  bool contains(std::string_view name) const noexcept {
    return find(name) != nullptr;
  }

  /// Build (and validate) the named scenario.  Throws facsp::ConfigError
  /// listing the registered names when `name` is unknown.
  core::ScenarioConfig build(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  std::vector<Entry> entries_;
};

/// Shorthand for ScenarioCatalog::instance().build(name).
core::ScenarioConfig catalog_scenario(const std::string& name);

}  // namespace facsp::workload
