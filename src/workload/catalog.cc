#include "workload/catalog.h"

#include "common/error.h"
#include "core/paper.h"

namespace facsp::workload {

namespace {

void register_builtins(ScenarioCatalog& catalog) {
  catalog.add("paper-grid",
              "paper Sec. 4 baseline: uniform arrivals over 900 s, 70/20/10 "
              "mix, centre cell only",
              [] { return core::paper_scenario(); });

  catalog.add("bursty-onoff",
              "ON/OFF (2-state MMPP) bursts: 8x intensity for ~60 s, near "
              "silence for ~180 s",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.traffic.arrival.kind = ArrivalKind::kOnOff;
                s.traffic.arrival.on_rate = 8.0;
                s.traffic.arrival.off_rate = 0.25;
                s.traffic.arrival.mean_on_s = 60.0;
                s.traffic.arrival.mean_off_s = 180.0;
                return s;
              });

  catalog.add("flash-crowd",
              "half of every batch lands in a 30 s spike at t=300 s; the "
              "rest spreads over the window",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.traffic.arrival.kind = ArrivalKind::kFlashCrowd;
                s.traffic.arrival.flash_fraction = 0.5;
                s.traffic.arrival.flash_start_s = 300.0;
                s.traffic.arrival.flash_duration_s = 30.0;
                return s;
              });

  catalog.add("diurnal",
              "sinusoidal arrival intensity (amplitude 0.8, one period per "
              "900 s window) sampled by thinning",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.traffic.arrival.kind = ArrivalKind::kDiurnal;
                s.traffic.arrival.diurnal_amplitude = 0.8;
                s.traffic.arrival.diurnal_period_s = 900.0;
                s.traffic.arrival.diurnal_phase_rad = 0.0;
                return s;
              });

  catalog.add("hotspot-ring2",
              "19-cell grid with load decaying 2x per ring away from the "
              "centre hotspot",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.rings = 2;
                s.spatial.kind = SpatialKind::kHotspot;
                s.spatial.hotspot_decay = 0.5;
                return s;
              });

  catalog.add("highway",
              "19-cell grid; full load and 100 km/h users along an "
              "east-west corridor, 10% load elsewhere",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.rings = 2;
                s.spatial.kind = SpatialKind::kHighway;
                s.spatial.highway_halfwidth_m = 2000.0;
                s.spatial.highway_off_weight = 0.1;
                s.traffic.fixed_speed_kmh = 100.0;
                return s;
              });

  catalog.add("multicell-ring1",
              "7 sharded single-BS cells on a ring-1 super-grid; every cell "
              "runs the paper workload, handovers cross shard boundaries",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                // One BS per shard: the super grid IS the cell grid, so
                // every handoff is an inter-cell (batched) admission.
                s.rings = 0;
                s.multicell.cells = 7;
                return s;
              });

  catalog.add("multicell-handover-storm",
              "7 sharded 500 m cells, paper speed mix compressed into a "
              "450 s window: calls cross several cells per holding time, "
              "handover admissions dominate the decision mix",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.rings = 0;
                s.multicell.cells = 7;
                s.cell_radius_m = 500.0;
                s.traffic.arrival_window_s = 450.0;
                return s;
              });

  catalog.add("multicell-sparse-100",
              "100 sharded 500 m cells, fresh traffic only in the centre "
              "cell: the quiet 99% exercise the engine's event-driven epoch "
              "skipping and active-shard index",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.rings = 0;
                s.multicell.cells = 100;
                s.multicell.workload_cells = 1;
                s.cell_radius_m = 500.0;
                s.traffic.arrival_window_s = 450.0;
                return s;
              });

  catalog.add("mix-shift",
              "service mix shifts video-heavy (40/20/40) halfway through "
              "the window — the ROADMAP's ratio sweep in one scenario",
              [] {
                core::ScenarioConfig s = core::paper_scenario();
                s.traffic.mix_schedule = MixSchedule({
                    {0.0, cellular::TrafficMix{0.70, 0.20, 0.10}},
                    {450.0, cellular::TrafficMix{0.40, 0.20, 0.40}},
                });
                return s;
              });
}

}  // namespace

ScenarioCatalog& ScenarioCatalog::instance() {
  static ScenarioCatalog catalog = [] {
    ScenarioCatalog c;
    register_builtins(c);
    return c;
  }();
  return catalog;
}

void ScenarioCatalog::add(std::string name, std::string description,
                          Builder builder) {
  if (name.empty()) throw ConfigError("catalog: scenario name must not be empty");
  if (!builder) throw ConfigError("catalog: scenario builder must not be empty");
  if (contains(name))
    throw ConfigError("catalog: scenario '" + name + "' already registered");
  entries_.push_back({std::move(name), std::move(description),
                      std::move(builder)});
}

const ScenarioCatalog::Entry* ScenarioCatalog::find(
    std::string_view name) const noexcept {
  for (const Entry& e : entries_)
    if (e.name == name) return &e;
  return nullptr;
}

core::ScenarioConfig ScenarioCatalog::build(const std::string& name) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::string known;
    for (const Entry& e : entries_)
      known += (known.empty() ? "" : "|") + e.name;
    throw ConfigError("catalog: unknown scenario '" + name + "' (" + known +
                      ")");
  }
  core::ScenarioConfig scenario = entry->build();
  scenario.validate();
  return scenario;
}

std::vector<std::string> ScenarioCatalog::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

core::ScenarioConfig catalog_scenario(const std::string& name) {
  return ScenarioCatalog::instance().build(name);
}

}  // namespace facsp::workload
