#include "workload/mix_schedule.h"

#include <charconv>
#include <cstdio>
#include <stdexcept>

#include "common/error.h"

namespace facsp::workload {

int MixSchedule::segment_at(double t_s) const noexcept {
  int active = -1;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].start_s <= t_s)
      active = static_cast<int>(i);
    else
      break;
  }
  return active;
}

const cellular::TrafficMix& MixSchedule::mix_at(
    double t_s, const cellular::TrafficMix& base) const noexcept {
  const int idx = segment_at(t_s);
  return idx < 0 ? base : segments_[static_cast<std::size_t>(idx)].mix;
}

void MixSchedule::validate() const {
  double prev = -1.0;
  for (const MixSegment& seg : segments_) {
    if (seg.start_s < 0.0)
      throw ConfigError("mix_schedule: segment start must be >= 0");
    if (seg.start_s <= prev)
      throw ConfigError(
          "mix_schedule: segment starts must be strictly increasing");
    seg.mix.validate();
    prev = seg.start_s;
  }
}

MixSchedule MixSchedule::from_string(const std::string& text) {
  if (text.empty() || text == "none") return MixSchedule{};
  std::vector<MixSegment> segments;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t semi = text.find(';', pos);
    const std::string token = text.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    MixSegment seg;
    double start = 0.0, t = 0.0, v = 0.0, d = 0.0;
    char trailing = '\0';
    if (std::sscanf(token.c_str(), "%lf:%lf/%lf/%lf%c", &start, &t, &v, &d,
                    &trailing) != 4)
      throw ConfigError("mix_schedule: expected 'start:text/voice/video', got '" +
                        token + "'");
    seg.start_s = start;
    seg.mix = cellular::TrafficMix{t, v, d};
    segments.push_back(seg);
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  MixSchedule schedule(std::move(segments));
  schedule.validate();
  return schedule;
}

namespace {

// Shortest decimal that parses back to exactly the same double, so a valid
// schedule never serializes into one that fails validation on reload.
std::string print_double(double v) {
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, end);
}

}  // namespace

std::string MixSchedule::to_string() const {
  if (segments_.empty()) return "none";
  std::string out;
  for (const MixSegment& seg : segments_) {
    if (!out.empty()) out += ';';
    out += print_double(seg.start_s) + ':' + print_double(seg.mix.text) +
           '/' + print_double(seg.mix.voice) + '/' +
           print_double(seg.mix.video);
  }
  return out;
}

}  // namespace facsp::workload
