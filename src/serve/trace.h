// On-disk admission-request trace: `trace record` captures the exact
// request sequence a workload stream produces, `trace replay` (and the
// decision server's replay mode) feeds it back.
//
// The format is a plain CSV with a fixed header (see kTraceColumns).  All
// doubles are written through core::format_double — shortest decimal that
// round-trips exactly — so record -> replay -> record is byte-stable and a
// recorded trace is diffable across machines.
//
// Records carry the *post-prediction* request (the noisy angle the policy
// actually saw, not the true heading), so replaying never re-draws any
// randomness: a trace pins the policy inputs completely.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cac/policy.h"

namespace facsp::serve {

/// One admission request as the server sees it, plus the call's holding
/// time (needed to schedule the session's bandwidth release on admit).
/// `req.now` is the arrival time in seconds on the simulated clock.
struct StampedRequest {
  cac::AdmissionRequest req;
  double holding_s = 0.0;
};

/// The trace header line (column order is part of the format).
extern const char kTraceHeader[];

/// Write records as trace CSV.  Byte-stable: same records -> same bytes.
void write_trace(const std::vector<StampedRequest>& records, std::ostream& os);
/// Throws facsp::Error on I/O failure.
void write_trace_file(const std::vector<StampedRequest>& records,
                      const std::string& path);

/// Parse a trace CSV.  Throws facsp::ParseError on a malformed header,
/// unknown enum name, or unparsable number.
std::vector<StampedRequest> read_trace(std::istream& is);
std::vector<StampedRequest> read_trace_file(const std::string& path);

}  // namespace facsp::serve
