#include "serve/decision_loop.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <ostream>
#include <span>

#include "cellular/network.h"
#include "common/error.h"
#include "common/expects.h"
#include "core/config_io.h"
#include "core/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/thread_pool.h"

namespace facsp::serve {

using core::format_double;

void ServerConfig::validate(bool live) const {
  scenario.validate();
  if (shards < 1) throw ConfigError("server: shards must be >= 1");
  if (threads < 0) throw ConfigError("server: threads must be >= 0");
  if (batch_window_s <= 0.0 || batch_window_s > 1.0)
    throw ConfigError("server: batch_window_s must be in (0, 1]");
  if (batch_max < 1) throw ConfigError("server: batch_max must be >= 1");
  if (handoff_fraction < 0.0 || handoff_fraction > 1.0)
    throw ConfigError("server: handoff_fraction must be in [0, 1]");
  if (live) {
    if (duration_s <= 0) throw ConfigError("server: duration must be > 0");
    if (requests_per_s < 0)
      throw ConfigError("server: requests_per_s must be >= 0");
  }
}

namespace {

/// Disjoint connection-id range per shard (trace ids pass through as-is).
constexpr cellular::ConnectionId kShardIdStride = 1ull << 40;

/// This shard's share of the aggregate rate (remainder to low indices).
int shard_rate(int total, int shard, int shards) {
  return total / shards + (shard < total % shards ? 1 : 0);
}

struct ServeMetrics {
  obs::Counter& decisions;
  obs::Counter& admitted;
  obs::Histogram& batch_fill;
  obs::Histogram& batch_ns;
  obs::Gauge& active_sessions;

  static ServeMetrics& get() {
    static ServeMetrics m{
        obs::Registry::instance().counter("serve.decisions"),
        obs::Registry::instance().counter("serve.admitted"),
        obs::Registry::instance().histogram("serve.batch_fill"),
        obs::Registry::instance().histogram("serve.batch_ns"),
        obs::Registry::instance().gauge("serve.active_sessions"),
    };
    return m;
  }
};

struct ExpiryLater {
  template <typename E>
  bool operator()(const E& a, const E& b) const noexcept {
    return a.at > b.at;
  }
};

}  // namespace

// --- ShardCore -------------------------------------------------------------

ShardCore::ShardCore(const ServerConfig& config, int shard_index)
    : rng_(sim::hash_seed(config.scenario.seed, "serve-cell",
                          static_cast<std::uint64_t>(shard_index))),
      batch_window_s_(config.batch_window_s),
      batch_max_(config.batch_max) {
  net_ = std::make_unique<cellular::CellularNetwork>(
      config.scenario.rings, config.scenario.cell_radius_m,
      config.scenario.capacity_bu);
  policy_ = core::policy_factory_by_name(config.policy)(*net_, rng_);
  // Steady-state reservations: sessions are bounded by the cell capacity
  // (allocate() only succeeds while bandwidth fits), batches by batch_max.
  expiries_.reserve(static_cast<std::size_t>(config.scenario.capacity_bu) +
                    16);
  decisions_.reserve(static_cast<std::size_t>(config.batch_max));
}

void ShardCore::expire_until(double t, bool strict) {
  cellular::BaseStation& bs = net_->center();
  while (!expiries_.empty() &&
         (strict ? expiries_.front().at < t : expiries_.front().at <= t)) {
    std::pop_heap(expiries_.begin(), expiries_.end(), ExpiryLater{});
    const Expiry e = expiries_.back();
    expiries_.pop_back();
    bs.release(e.id, e.at);
    policy_->on_released(e.id, e.service, bs);
  }
}

std::span<const cac::AdmissionDecision> ShardCore::process_batch(
    std::span<const cac::AdmissionRequest> batch,
    std::span<const double> holding_s) {
  FACSP_EXPECTS(!batch.empty());
  FACSP_EXPECTS(batch.size() == holding_s.size());
  const double t0 = batch.front().now;
  const std::int64_t sec = static_cast<std::int64_t>(std::floor(t0));
  FACSP_EXPECTS(sec >= current_second_);
  if (sec != current_second_) {
    second_hist_.reset();
    current_second_ = sec;
  }
  TelemetryRow& row = window_.row_for(sec);
  cellular::BaseStation& bs = net_->center();
  const std::size_t n = batch.size();

  // Free the bandwidth of calls that ended before this batch arrived, so
  // the policy sees the current load.
  expire_until(t0, /*strict=*/false);

  decisions_.resize(n);

  const auto start = std::chrono::steady_clock::now();
  policy_->decide_batch(batch, bs, decisions_);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  const std::uint64_t batch_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  second_hist_.record_n(std::max<std::uint64_t>(1, batch_ns / n), n);

  // Observability reuses the clock pair already read for the latency
  // histogram — tracing a batch costs no extra clock read.
  if (obs::Tracer::enabled())
    obs::Tracer::record("serve", "decide_batch", obs::Tracer::to_trace_ns(start),
                        batch_ns, static_cast<std::int64_t>(n));
  const bool metrics_on = obs::metrics_enabled();
  if (metrics_on) {
    ServeMetrics& m = ServeMetrics::get();
    m.decisions.add(n);
    m.batch_fill.record(n);
    m.batch_ns.record(batch_ns);
  }
  const std::int64_t admitted_before = row.admitted;

  row.queue_depth = std::max(row.queue_depth, static_cast<std::int64_t>(n));
  row.decisions += static_cast<std::int64_t>(n);

  for (std::size_t k = 0; k < n; ++k) {
    const cac::AdmissionRequest& req = batch[k];
    const bool handoff = req.kind == cellular::RequestKind::kHandoff;
    (handoff ? row.handoff_attempts : row.new_attempts) += 1;

    bool admitted = decisions_[k].admitted;
    if (admitted) {
      // decide_batch scores requests as-if independent; re-check physical
      // capacity at apply time and demote over-admissions.  An id already
      // holding bandwidth demotes the same way — ids are client-controlled
      // on the socket path, so a duplicate in-flight id must degrade to a
      // rejection, not trip allocate()'s precondition.
      cellular::Connection conn;
      conn.id = req.id;
      conn.service = req.service;
      conn.bandwidth = req.bandwidth;
      conn.priority = req.priority;
      conn.origin = req.kind;
      admitted = !bs.holds(req.id) &&
                 bs.allocate(conn, req.now, /*via_handoff=*/handoff);
      if (admitted) {
        policy_->on_admitted(req, bs);
        expiries_.push_back({req.now + holding_s[k], req.id, req.service});
        std::push_heap(expiries_.begin(), expiries_.end(), ExpiryLater{});
      } else {
        decisions_[k].admitted = false;  // demotion visible to the caller
      }
    }
    if (admitted)
      ++row.admitted;
    else
      (handoff ? row.dropped_handoff : row.blocked_new) += 1;
  }
  if (metrics_on)
    ServeMetrics::get().admitted.add(
        static_cast<std::uint64_t>(row.admitted - admitted_before));
  return {decisions_.data(), n};
}

void ShardCore::finish_second(std::int64_t second) {
  FACSP_EXPECTS(second >= current_second_);
  if (second != current_second_) {
    second_hist_.reset();  // no batches this second: the histogram is empty
    current_second_ = second;
  }
  TelemetryRow& row = window_.row_for(second);
  // Calls ending in this second's tail (strict <: a release exactly on the
  // window edge belongs to the next window).
  expire_until(static_cast<double>(second + 1), /*strict=*/true);
  row.active_sessions = static_cast<std::int64_t>(expiries_.size());
}

std::size_t batch_end(std::span<const cac::AdmissionRequest> arrivals,
                      std::size_t i, double batch_window_s,
                      int batch_max) noexcept {
  // The batch opens at the first buffered arrival and closes at the next
  // batching-window boundary (or at batch_max requests, or at the end of
  // the arrival's simulated second).
  const double t0 = arrivals[i].now;
  const double second_end = std::floor(t0) + 1.0;
  const double close = std::min(
      second_end, (std::floor(t0 / batch_window_s) + 1.0) * batch_window_s);
  std::size_t j = i + 1;
  while (j < arrivals.size() && j - i < static_cast<std::size_t>(batch_max) &&
         arrivals[j].now < close)
    ++j;
  return j;
}

struct DecisionServer::Shard {
  ShardCore core;
  std::unique_ptr<RequestStream> stream;
  /// Parallel per-second arrival arrays (contiguous so batches are plain
  /// sub-spans of `arrivals` — no per-batch request copy).
  std::vector<cac::AdmissionRequest> arrivals;
  std::vector<double> holdings;

  Shard(const ServerConfig& config, int index) : core(config, index) {}
};

DecisionServer::DecisionServer(const ServerConfig& config) : config_(config) {
  config_.validate(/*live=*/true);
  duration_s_ = config_.duration_s;
  build_shards();
}

DecisionServer::DecisionServer(const ServerConfig& config,
                               std::vector<StampedRequest> trace)
    : config_(config), trace_(std::move(trace)), replay_(true) {
  config_.validate(/*live=*/false);
  duration_s_ = config_.duration_s;
  if (duration_s_ <= 0 && !trace_.empty())
    duration_s_ =
        static_cast<std::int64_t>(std::floor(trace_.back().req.now)) + 1;
  if (duration_s_ <= 0)
    throw ConfigError("server: empty trace and no duration given");
  build_shards();
}

DecisionServer::~DecisionServer() = default;

void DecisionServer::build_shards() {
  // Validate the policy name once up front (ShardCore resolves it again per
  // shard; the registry lookup is cheap and pure).
  (void)core::policy_factory_by_name(config_.policy);
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>(config_, s);
    if (replay_) {
      shard->stream = std::make_unique<TraceReplayStream>(trace_, s,
                                                          config_.shards);
    } else {
      // RngFactory derives streams purely from (master seed, name), so a
      // factory rebuilt with the shard's seed hands the stream exactly the
      // draws it always received.
      const sim::RngFactory rng(sim::hash_seed(
          config_.scenario.seed, "serve-cell", static_cast<std::uint64_t>(s)));
      const cellular::CellularNetwork& net = shard->core.network();
      shard->stream = std::make_unique<WorkloadRequestStream>(
          config_.scenario.traffic, net.layout(), net.center().position(),
          config_.scenario.predictor, config_.handoff_fraction,
          shard_rate(config_.requests_per_s, s, config_.shards), rng,
          kShardIdStride * static_cast<cellular::ConnectionId>(s + 1) + 1);
    }
    shard->core.reserve_windows(static_cast<std::size_t>(duration_s_));
    shards_.push_back(std::move(shard));
  }
}

void DecisionServer::run_second(Shard& shard, std::int64_t second) {
  shard.arrivals.clear();
  shard.holdings.clear();
  shard.stream->next_second(second, shard.arrivals, shard.holdings);
  std::size_t i = 0;
  while (i < shard.arrivals.size()) {
    const std::size_t j = batch_end(shard.arrivals, i, config_.batch_window_s,
                                    config_.batch_max);
    shard.core.process_batch(
        std::span<const cac::AdmissionRequest>(shard.arrivals.data() + i,
                                               j - i),
        std::span<const double>(shard.holdings.data() + i, j - i));
    i = j;
  }
  shard.core.finish_second(second);
}

ServerResult DecisionServer::run() {
  ServerResult result;
  result.telemetry.reserve(static_cast<std::size_t>(duration_s_));
  result.latency.reserve(static_cast<std::size_t>(duration_s_));

  const unsigned threads = sim::ThreadPool::resolve_threads(config_.threads);
  std::unique_ptr<sim::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<sim::ThreadPool>(threads);

  LatencyHistogram second_lat;
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::int64_t sec = 0; sec < duration_s_; ++sec) {
    if (pool) {
      pool->parallel_for(shards_.size(), [this, sec](std::size_t s) {
        obs::ScopedSpan span("serve", "second",
                             static_cast<std::int64_t>(s));
        run_second(*shards_[s], sec);
      });
    } else {
      // Serial path kept free of std::function so steady-state seconds
      // perform no allocation at threads == 1.
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        obs::ScopedSpan span("serve", "second",
                             static_cast<std::int64_t>(s));
        run_second(*shards_[s], sec);
      }
    }

    // Fixed-order merge: shard 0, 1, 2, ... regardless of which thread
    // finished first — this is what makes telemetry thread-count-invariant.
    TelemetryRow merged;
    merged.window = sec;
    second_lat.reset();
    for (const auto& shard : shards_) {
      FACSP_ENSURES(shard->core.window().rows().back().window == sec);
      merged.merge(shard->core.window().rows().back());
      second_lat.merge(shard->core.second_hist());
    }
    result.total_decisions += merged.decisions;
    result.total_admitted += merged.admitted;
    result.telemetry.push_back(merged);
    if (obs::metrics_enabled())
      ServeMetrics::get().active_sessions.set(merged.active_sessions);
    if (second_hook_) second_hook_(sec, merged);

    LatencyRow lat;
    lat.window = sec;
    lat.samples = second_lat.count();
    if (lat.samples > 0) {
      lat.p50_ns = second_lat.percentile_ns(0.50);
      lat.p95_ns = second_lat.percentile_ns(0.95);
      lat.p99_ns = second_lat.percentile_ns(0.99);
      lat.p999_ns = second_lat.percentile_ns(0.999);
      lat.mean_ns = second_lat.mean_ns();
      lat.max_ns = second_lat.max_ns();
    }
    result.latency.push_back(lat);
    result.overall.merge(second_lat);
  }
  const auto wall_elapsed = std::chrono::steady_clock::now() - wall_start;
  result.wall_s =
      std::chrono::duration<double>(wall_elapsed).count();
  return result;
}

std::vector<StampedRequest> record_trace(const ServerConfig& config) {
  config.validate(/*live=*/true);
  std::vector<StampedRequest> all;
  all.reserve(static_cast<std::size_t>(config.requests_per_s) *
              static_cast<std::size_t>(config.duration_s));
  for (int s = 0; s < config.shards; ++s) {
    // Same stream construction as the live server, minus the serving loop.
    cellular::CellularNetwork net(config.scenario.rings,
                                  config.scenario.cell_radius_m,
                                  config.scenario.capacity_bu);
    sim::RngFactory rng(sim::hash_seed(config.scenario.seed, "serve-cell",
                                       static_cast<std::uint64_t>(s)));
    WorkloadRequestStream stream(
        config.scenario.traffic, net.layout(), net.center().position(),
        config.scenario.predictor, config.handoff_fraction,
        shard_rate(config.requests_per_s, s, config.shards), rng,
        kShardIdStride * static_cast<cellular::ConnectionId>(s + 1) + 1);
    std::vector<cac::AdmissionRequest> reqs;
    std::vector<double> holdings;
    for (std::int64_t sec = 0; sec < config.duration_s; ++sec)
      stream.next_second(sec, reqs, holdings);
    for (std::size_t k = 0; k < reqs.size(); ++k)
      all.push_back({reqs[k], holdings[k]});
  }
  std::sort(all.begin(), all.end(),
            [](const StampedRequest& a, const StampedRequest& b) {
              return a.req.now != b.req.now ? a.req.now < b.req.now
                                            : a.req.id < b.req.id;
            });
  return all;
}

// --- rendering -------------------------------------------------------------

namespace {

template <typename Fn>
void write_file(const std::string& path, Fn&& write) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  write(os);
  if (!os) throw Error("failed writing '" + path + "'");
}

}  // namespace

const char kTelemetryCsvHeader[] =
    "second,decisions,admitted,new_attempts,blocked_new,"
    "handoff_attempts,dropped_handoff,queue_depth,active_sessions,"
    "cbp_pct,cdp_pct\n";

void write_telemetry_row(const TelemetryRow& r, std::ostream& os) {
  os << r.window << ',' << r.decisions << ',' << r.admitted << ','
     << r.new_attempts << ',' << r.blocked_new << ',' << r.handoff_attempts
     << ',' << r.dropped_handoff << ',' << r.queue_depth << ','
     << r.active_sessions << ',' << format_double(r.cbp_pct()) << ','
     << format_double(r.cdp_pct()) << '\n';
}

void write_telemetry_csv(const ServerResult& result, std::ostream& os) {
  os << kTelemetryCsvHeader;
  for (const TelemetryRow& r : result.telemetry) write_telemetry_row(r, os);
}

void write_telemetry_csv(const ServerResult& result, const std::string& path) {
  write_file(path, [&](std::ostream& os) { write_telemetry_csv(result, os); });
}

void write_latency_csv(const ServerResult& result, std::ostream& os) {
  os << "second,samples,p50_ns,p95_ns,p99_ns,p999_ns,mean_ns,max_ns\n";
  for (const LatencyRow& r : result.latency) {
    os << r.window << ',' << r.samples << ',' << r.p50_ns << ',' << r.p95_ns
       << ',' << r.p99_ns << ',' << r.p999_ns << ','
       << format_double(r.mean_ns) << ',' << r.max_ns << '\n';
  }
}

void write_latency_csv(const ServerResult& result, const std::string& path) {
  write_file(path, [&](std::ostream& os) { write_latency_csv(result, os); });
}

void write_summary_json(const ServerConfig& config, const ServerResult& result,
                        std::ostream& os) {
  std::int64_t blocked = 0, dropped = 0, news = 0, handoffs = 0;
  for (const TelemetryRow& r : result.telemetry) {
    blocked += r.blocked_new;
    dropped += r.dropped_handoff;
    news += r.new_attempts;
    handoffs += r.handoff_attempts;
  }
  const double cbp =
      news > 0 ? 100.0 * static_cast<double>(blocked) / news : 0.0;
  const double cdp =
      handoffs > 0 ? 100.0 * static_cast<double>(dropped) / handoffs : 0.0;
#if defined(FACSP_SIMD_ENABLED)
  const bool simd = true;
#else
  const bool simd = false;
#endif
  os << "{\n"
     << "  \"policy\": \"" << config.policy << "\",\n"
     << "  \"seed\": " << config.scenario.seed << ",\n"
     << "  \"shards\": " << config.shards << ",\n"
     << "  \"threads\": " << config.threads << ",\n"
     << "  \"metadata\": {\"seed\": " << config.scenario.seed
     << ", \"policy\": \"" << config.policy << "\", \"scenario\": \""
     << config.scenario_label << "\", \"shards\": " << config.shards
     << ", \"threads\": " << config.threads
     << ", \"simd\": " << (simd ? "true" : "false")
     << ", \"latency_histogram\": {\"sub_bucket_bits\": "
     << LatencyHistogram::kSubBucketBits
     << ", \"max_shift\": " << LatencyHistogram::kMaxShift
     << ", \"buckets\": " << LatencyHistogram::kBucketCount << "}},\n"
     << "  \"duration_s\": " << result.telemetry.size() << ",\n"
     << "  \"total_decisions\": " << result.total_decisions << ",\n"
     << "  \"total_admitted\": " << result.total_admitted << ",\n"
     << "  \"cbp_pct\": " << format_double(cbp) << ",\n"
     << "  \"cdp_pct\": " << format_double(cdp) << ",\n"
     << "  \"wall_s\": " << format_double(result.wall_s) << ",\n"
     << "  \"decisions_per_s\": " << format_double(result.decisions_per_s())
     << ",\n"
     << "  \"latency_ns\": ";
  if (result.overall.count() > 0) {
    os << "{\"p50\": " << result.overall.percentile_ns(0.50)
       << ", \"p95\": " << result.overall.percentile_ns(0.95)
       << ", \"p99\": " << result.overall.percentile_ns(0.99)
       << ", \"p999\": " << result.overall.percentile_ns(0.999)
       << ", \"mean\": " << format_double(result.overall.mean_ns())
       << ", \"max\": " << result.overall.max_ns() << "}\n";
  } else {
    os << "null\n";
  }
  os << "}\n";
}

void write_summary_json(const ServerConfig& config, const ServerResult& result,
                        const std::string& path) {
  write_file(path, [&](std::ostream& os) {
    write_summary_json(config, result, os);
  });
}

sim::Figure telemetry_figure(const ServerResult& result) {
  sim::Figure fig("decision server telemetry", "second", "per-second value");
  sim::Series& decisions = fig.add_series("decisions");
  sim::Series& cbp = fig.add_series("CBP %");
  sim::Series& cdp = fig.add_series("CDP %");
  sim::Series& active = fig.add_series("active");
  for (const TelemetryRow& r : result.telemetry) {
    const double x = static_cast<double>(r.window);
    decisions.add(x, static_cast<double>(r.decisions));
    cbp.add(x, r.cbp_pct());
    cdp.add(x, r.cdp_pct());
    active.add(x, static_cast<double>(r.active_sessions));
  }
  return fig;
}

}  // namespace facsp::serve
