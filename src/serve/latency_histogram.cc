#include "serve/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/expects.h"

namespace facsp::serve {

namespace {

/// Values at or above this saturate into the final bucket.
constexpr std::uint64_t kSaturation =
    (LatencyHistogram::kSubBuckets * 2) << LatencyHistogram::kMaxShift;

}  // namespace

std::size_t LatencyHistogram::bucket_index(std::uint64_t ns) noexcept {
  if (ns >= kSaturation) return kBucketCount - 1;
  // Below 2 * kSubBuckets every value has its own exact bucket.
  if (ns < kSubBuckets * 2) return static_cast<std::size_t>(ns);
  // Otherwise: top set bit selects the octave, the kSubBucketBits bits
  // below it select the linear sub-bucket within that octave.
  const int top = std::bit_width(ns) - 1;  // >= kSubBucketBits + 1
  const int shift = top - kSubBucketBits;
  const std::uint64_t sub = ns >> shift;  // in [kSubBuckets, 2*kSubBuckets)
  return static_cast<std::size_t>(shift + 1) * kSubBuckets +
         static_cast<std::size_t>(sub - kSubBuckets);
}

std::uint64_t LatencyHistogram::bucket_upper_bound(std::uint64_t ns) noexcept {
  if (ns >= kSaturation) return kSaturation;  // sentinel for the overflow bin
  if (ns < kSubBuckets * 2) return ns;
  const int top = std::bit_width(ns) - 1;
  const int shift = top - kSubBucketBits;
  const std::uint64_t sub = ns >> shift;
  return ((sub + 1) << shift) - 1;
}

void LatencyHistogram::record_n(std::uint64_t ns, std::uint64_t n) noexcept {
  counts_[bucket_index(ns)] += n;
  count_ += n;
  sum_ += ns * n;
  max_ = std::max(max_, ns);
}

std::uint64_t LatencyHistogram::percentile_ns(double q) const {
  FACSP_EXPECTS(count_ > 0);
  FACSP_EXPECTS(q >= 0.0 && q <= 1.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      if (i < kSubBuckets * 2) return i;
      const std::size_t shift = i / kSubBuckets - 1;
      const std::uint64_t sub = i % kSubBuckets + kSubBuckets;
      return ((sub + 1) << shift) - 1;
    }
  }
  return max_;  // unreachable: counts_ sums to count_ >= rank
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() noexcept {
  counts_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
}

}  // namespace facsp::serve
