// Fixed-bucket log-linear latency histogram for the decision server's
// per-second p50/p95/p99 telemetry.
//
// The value domain is nanoseconds.  Buckets follow the HDR-histogram
// layout: values below 2 * kSubBuckets land in exact unit buckets; above
// that, each power-of-two octave is split into kSubBuckets linear
// sub-buckets, bounding the relative quantisation error of any reported
// percentile by 1/kSubBuckets (6.25%).  Storage is one fixed std::array —
// record() never allocates, so the histogram can live inside the
// zero-allocation steady-state serving loop.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace facsp::serve {

class LatencyHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave (16 -> <=6.25% error).
  static constexpr int kSubBucketBits = 4;
  static constexpr std::uint64_t kSubBuckets = 1u << kSubBucketBits;
  /// Largest distinguishable value: ~2^41 ns (~37 simulated minutes); larger
  /// samples saturate into the top bucket.
  static constexpr int kMaxShift = 37;
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kMaxShift + 2) * kSubBuckets;

  /// Count one latency sample (saturating into the top bucket).
  void record(std::uint64_t ns) noexcept { record_n(ns, 1); }

  /// Count `n` identical samples (a batch measured once, attributed to each
  /// of its items).
  void record_n(std::uint64_t ns, std::uint64_t n) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  /// Largest recorded sample, exact (not quantised).
  std::uint64_t max_ns() const noexcept { return max_; }
  /// Sum of all recorded samples, exact (accumulated before quantisation).
  std::uint64_t sum_ns() const noexcept { return sum_; }
  /// Exact arithmetic mean (sum/count); 0 when empty.
  double mean_ns() const noexcept {
    return count_ == 0
               ? 0.0
               : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Upper bound of the bucket holding the ceil(q * count)-th smallest
  /// sample (q in [0, 1]; q = 0 reads the smallest).  An upper bound on the
  /// exact percentile, within 1/kSubBuckets relative error.  Throws
  /// facsp::ContractViolation when empty or q is outside [0, 1].
  std::uint64_t percentile_ns(double q) const;

  /// Merge another histogram's counts into this one.
  void merge(const LatencyHistogram& other) noexcept;

  void reset() noexcept;

  // --- bucket geometry (exposed for tests) ---------------------------------
  static std::size_t bucket_index(std::uint64_t ns) noexcept;
  /// Largest value mapping to the same bucket as `ns`.
  static std::uint64_t bucket_upper_bound(std::uint64_t ns) noexcept;

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace facsp::serve
