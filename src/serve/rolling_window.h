// Rolling per-window telemetry counters for the decision server.
//
// Telemetry that must be byte-identical across runs and thread counts is
// kept as integer counters only; percentages (CBP/CDP) are derived at
// rendering time from the merged integers, so no floating-point summation
// order can leak into the deterministic CSV.
#pragma once

#include <cstdint>
#include <vector>

namespace facsp::serve {

/// Counters for one telemetry window (one simulated second by default).
/// All fields are integers so cross-shard merging is order-independent.
struct TelemetryRow {
  std::int64_t window = 0;  ///< window index = floor(t / window_s)
  std::int64_t decisions = 0;
  std::int64_t admitted = 0;
  std::int64_t new_attempts = 0;
  std::int64_t blocked_new = 0;
  std::int64_t handoff_attempts = 0;
  std::int64_t dropped_handoff = 0;
  /// Largest single-batch backlog observed inside the window.
  std::int64_t queue_depth = 0;
  /// Sessions alive at the end of the window.
  std::int64_t active_sessions = 0;

  /// Call-blocking probability over the window, percent (paper's CBP).
  double cbp_pct() const noexcept {
    return new_attempts == 0
               ? 0.0
               : 100.0 * static_cast<double>(blocked_new) /
                     static_cast<double>(new_attempts);
  }
  /// Call-dropping probability over the window, percent (paper's CDP).
  double cdp_pct() const noexcept {
    return handoff_attempts == 0
               ? 0.0
               : 100.0 * static_cast<double>(dropped_handoff) /
                     static_cast<double>(handoff_attempts);
  }

  /// Accumulate another shard's row for the same window.  queue_depth and
  /// active_sessions sum too: each shard owns a disjoint cell, so the
  /// totals are the system-wide backlog and population.
  void merge(const TelemetryRow& other) noexcept;
};

/// Accumulates per-window rows on a simulated clock.  Windows are
/// half-open [k*w, (k+1)*w): an event exactly on the edge k*w counts in
/// window k.  Rows are appended in window order; rows() is stable storage
/// reserved up front, so steady-state recording never reallocates once
/// reserve_windows() has been called.
class RollingWindow {
 public:
  explicit RollingWindow(double window_s = 1.0);

  double window_s() const noexcept { return window_s_; }

  /// Index of the window containing simulated time t.
  std::int64_t window_of(double t_s) const noexcept;

  /// Returns the mutable row for window `w`, opening it (and any skipped
  /// empty windows) if needed.  `w` must not precede the last opened
  /// window.
  TelemetryRow& row_for(std::int64_t w);

  void reserve_windows(std::size_t n) { rows_.reserve(n); }

  const std::vector<TelemetryRow>& rows() const noexcept { return rows_; }
  std::vector<TelemetryRow>& rows() noexcept { return rows_; }

 private:
  double window_s_;
  std::vector<TelemetryRow> rows_;
};

}  // namespace facsp::serve
