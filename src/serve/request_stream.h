// Request sources for the decision server: live synthesis from the
// workload layer on a simulated clock, or replay of a recorded trace.
//
// A stream is per-shard.  The server fixes the shard count up front (it is
// part of the scenario, NOT derived from the thread count), assigns each
// shard its own stream, and asks every stream for one simulated second of
// arrivals at a time.  All randomness is drawn from streams rooted at
// hash_seed(seed, "serve-cell", shard), so the request sequence — and
// therefore the telemetry — is a pure function of (scenario, seed, shard
// count), independent of how many threads drain the shards.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cellular/mobility.h"
#include "cellular/network.h"
#include "cellular/traffic.h"
#include "serve/trace.h"
#include "sim/rng.h"

namespace facsp::serve {

/// One shard's source of admission requests.
class RequestStream {
 public:
  virtual ~RequestStream() = default;

  /// Append this shard's requests with arrival in [second, second + 1) —
  /// sorted by arrival time (`req.now`) — to `reqs`, and each request's
  /// holding time to `holding_s` (parallel arrays, NOT cleared; the
  /// requests land contiguously so the serving loop can hand sub-spans
  /// straight to decide_batch without re-copying).  Returns false when the
  /// stream has no further requests at or after `second + 1` (live streams
  /// never end; replay ends when the trace is exhausted).
  ///
  /// Steady-state contract: once the vectors have reached their high-water
  /// capacity, calls perform no heap allocation.
  virtual bool next_second(std::int64_t second,
                           std::vector<cac::AdmissionRequest>& reqs,
                           std::vector<double>& holding_s) = 0;
};

/// Live synthesis: cellular::TrafficGenerator arrivals at a fixed rate,
/// stamped with the predicted angle/distance exactly like the session
/// driver's admission path.  A configured fraction of requests is marked as
/// inbound handoffs (the serving loop has no neighbour shards to route real
/// departures through — the stream models the handoff pressure instead).
class WorkloadRequestStream final : public RequestStream {
 public:
  /// `layout` and `bs_position` must outlive the stream (they belong to the
  /// shard's CellularNetwork).  `requests_per_s` is this shard's share of
  /// the server rate; `first_id` starts the shard's disjoint id range.
  WorkloadRequestStream(const cellular::TrafficConfig& traffic,
                        const cellular::HexLayout& layout,
                        cellular::Point bs_position,
                        cellular::DirectionPredictor::Config predictor,
                        double handoff_fraction, int requests_per_s,
                        const sim::RngFactory& rng,
                        cellular::ConnectionId first_id);

  bool next_second(std::int64_t second,
                   std::vector<cac::AdmissionRequest>& reqs,
                   std::vector<double>& holding_s) override;

 private:
  cellular::Point bs_position_;
  int requests_per_s_;
  double handoff_fraction_;
  cellular::TrafficGenerator gen_;
  cellular::DirectionPredictor predictor_;
  sim::RandomStream kind_rng_;
  std::vector<cellular::CallRequest> scratch_;
};

/// Replay of a recorded trace.  The trace is shared by all shards; shard
/// `s` of `S` owns records with index % S == s, preserving relative order.
/// The vector must outlive the stream and be sorted by arrival time (as
/// written by `trace record`).
class TraceReplayStream final : public RequestStream {
 public:
  TraceReplayStream(const std::vector<StampedRequest>& trace, int shard,
                    int shards);

  bool next_second(std::int64_t second,
                   std::vector<cac::AdmissionRequest>& reqs,
                   std::vector<double>& holding_s) override;

 private:
  const std::vector<StampedRequest>& trace_;
  std::size_t cursor_;  ///< next owned record not yet replayed
  int shard_, shards_;
};

}  // namespace facsp::serve
