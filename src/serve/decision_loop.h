// The decision server: a long-lived admission-serving loop.
//
// Architecture (mirrors core::MultiCellEngine's determinism discipline):
// the server owns `shards` independent cells — each with its own
// CellularNetwork, policy instance and RNG streams rooted at
// hash_seed(seed, "serve-cell", shard) — and advances them one simulated
// second at a time.  Within a second each shard buffers its arrivals into
// batching windows (at most `batch_window_s` of latency or `batch_max`
// requests), answers every batch through the policy's zero-alloc
// decide_batch path, applies admissions against the shard's base station,
// and accumulates integer telemetry counters.  At the end of the second the
// shards are merged in fixed shard order.
//
// Determinism: the shard count is part of the configuration, NOT derived
// from the thread count, and threads only drain shards within a second —
// so the telemetry stream is a pure function of (scenario, seed, shard
// count) and byte-identical for ANY thread count.  Wall-clock decision
// latency is inherently machine-dependent; it is therefore kept out of the
// telemetry CSV entirely and reported in a separate latency CSV + summary.
//
// Steady-state allocation: every per-second container (arrival scratch,
// batch spans, expiry heap, telemetry rows) is reserved up front and
// reused, decide_batch reuses the policy's inference scratch, and with
// threads == 1 the shards are drained by a plain serial loop (no
// std::function) — so once warm, serving a second performs no heap
// allocation except one BaseStation ledger node per *admitted* call
// (bounded by capacity churn, ~capacity/mean_holding per second, not by
// the request rate).  bench_server.cc audits this with a counting
// operator new.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "serve/latency_histogram.h"
#include "serve/request_stream.h"
#include "serve/rolling_window.h"
#include "serve/trace.h"
#include "sim/timeseries.h"

namespace facsp::serve {

/// Everything the decision server depends on.
struct ServerConfig {
  /// Topology / traffic / seed (catalog scenario or config file).
  core::ScenarioConfig scenario{};
  /// Admission policy (core::policy_factory_by_name registry).
  std::string policy = "facs-p";
  /// Simulated seconds to serve.  Replay mode may leave this 0 to derive
  /// the duration from the trace.
  std::int64_t duration_s = 60;
  /// Aggregate live-mode arrival rate (requests per simulated second),
  /// split across shards (remainder to the lowest shard indices).
  int requests_per_s = 2000;
  /// Fraction of live-mode requests arriving as handoffs.
  double handoff_fraction = 0.25;
  /// Independent cells served (fixed by config — never by thread count).
  int shards = 4;
  /// Worker threads draining shards (1 = serial; 0 = hardware concurrency).
  /// Pure throughput knob: telemetry is byte-identical for every value.
  int threads = 1;
  /// Admission-batching window: requests buffer at most this long before
  /// the batch is decided (seconds, <= 1).  0.1 s keeps batches large
  /// enough (~50 requests at the paper-grid rate) for the SIMD lanes of
  /// decide_batch to pay off.
  double batch_window_s = 0.1;
  /// A batch also closes when it reaches this many requests.
  int batch_max = 256;
  /// Human-readable scenario name for the summary's run-metadata block
  /// (catalog name or config path; set by the CLI, purely descriptive).
  std::string scenario_label;

  /// Throws facsp::ConfigError on invalid values (`live` adds the
  /// live-mode-only requirements: positive duration and rate).
  void validate(bool live) const;
};

/// Per-second decision-latency percentiles (wall clock — deterministic in
/// *shape* only, never byte-stable; kept out of the telemetry CSV).
struct LatencyRow {
  std::int64_t window = 0;
  std::uint64_t samples = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
  double mean_ns = 0.0;
  std::uint64_t max_ns = 0;
};

/// Everything one server run produced.
struct ServerResult {
  double window_s = 1.0;
  /// Deterministic per-second counters, merged across shards.
  std::vector<TelemetryRow> telemetry;
  /// Wall-clock latency per second (separate CSV; non-deterministic).
  std::vector<LatencyRow> latency;
  /// All decision latencies over the whole run.
  LatencyHistogram overall;
  std::int64_t total_decisions = 0;
  std::int64_t total_admitted = 0;
  /// Wall-clock duration of the serving loop.
  double wall_s = 0.0;

  double decisions_per_s() const noexcept {
    return wall_s > 0.0 ? static_cast<double>(total_decisions) / wall_s : 0.0;
  }
};

/// One serving shard's admission core: the shard's cell, policy instance,
/// expiry heap and per-second telemetry/latency accumulators, with the
/// batched decide -> re-check -> apply -> count step as a reusable unit.
/// DecisionServer drives one core per shard from a RequestStream; the
/// socket front-end (src/net/) drives the same cores from connection input.
/// Whoever drives it, the telemetry a core produces is a pure function of
/// the (time-ordered) batch sequence it is fed — this is what makes the
/// socket replay path byte-identical to the in-process one.
///
/// Contract: batches must arrive in nondecreasing time order, each batch
/// entirely inside one simulated second, and finish_second(s) must be
/// called for every second in increasing order (it opens skipped empty
/// windows itself).  Steady state allocates nothing: every container is
/// reserved at construction (plus reserve_windows for the horizon), except
/// the documented one-ledger-node-per-admission in BaseStation::allocate.
class ShardCore {
 public:
  /// Builds the shard's network and policy exactly like the decision
  /// server always has: RNG streams rooted at
  /// hash_seed(scenario.seed, "serve-cell", shard_index).
  ShardCore(const ServerConfig& config, int shard_index);

  ShardCore(const ShardCore&) = delete;
  ShardCore& operator=(const ShardCore&) = delete;

  /// Decide one time-ordered batch (all arrivals within one second),
  /// re-check physical capacity, apply admissions, update the second's
  /// telemetry row and latency histogram.  Returns the per-request
  /// decisions with `admitted` reflecting the post-re-check outcome —
  /// valid until the next process_batch call.
  std::span<const cac::AdmissionDecision> process_batch(
      std::span<const cac::AdmissionRequest> batch,
      std::span<const double> holding_s);

  /// Close simulated second `second`: release calls ending in its tail and
  /// stamp the row's active_sessions.  Resets the per-second latency
  /// histogram when the second had no batches, so second_hist() always
  /// describes exactly `second` afterwards.
  void finish_second(std::int64_t second);

  void reserve_windows(std::size_t n) { window_.reserve_windows(n); }

  RollingWindow& window() noexcept { return window_; }
  const RollingWindow& window() const noexcept { return window_; }
  const LatencyHistogram& second_hist() const noexcept { return second_hist_; }
  /// Sessions currently holding bandwidth (size of the expiry heap).
  std::size_t active_sessions() const noexcept { return expiries_.size(); }
  /// The shard's cell (live request streams need the layout and the centre
  /// base station's position).
  const cellular::CellularNetwork& network() const noexcept { return *net_; }

 private:
  struct Expiry {
    double at = 0.0;
    cellular::ConnectionId id = 0;
    cellular::ServiceClass service = cellular::ServiceClass::kText;
  };

  void expire_until(double t, bool strict);

  sim::RngFactory rng_;
  std::unique_ptr<cellular::CellularNetwork> net_;
  std::unique_ptr<cac::AdmissionPolicy> policy_;
  RollingWindow window_;
  LatencyHistogram second_hist_;  ///< reset at each second's first batch
  std::vector<Expiry> expiries_;  ///< min-heap on `at`
  std::vector<cac::AdmissionDecision> decisions_;
  double batch_window_s_;
  int batch_max_;
  std::int64_t current_second_ = -1;
};

/// Greedy batching step shared by the serving loop and the socket
/// front-end: for time-sorted `arrivals` with an open batch starting at
/// `i`, returns the exclusive end `j` of that batch.  The batch closes at
/// the next batch_window_s boundary after arrivals[i].now (never crossing
/// the end of arrivals[i]'s simulated second) or at batch_max requests.
std::size_t batch_end(std::span<const cac::AdmissionRequest> arrivals,
                      std::size_t i, double batch_window_s,
                      int batch_max) noexcept;

/// The serving loop.  Construct in live mode (requests synthesised by the
/// workload layer) or replay mode (requests read from a recorded trace,
/// partitioned round-robin across shards), then run() once.
class DecisionServer {
 public:
  explicit DecisionServer(const ServerConfig& config);
  DecisionServer(const ServerConfig& config, std::vector<StampedRequest> trace);
  ~DecisionServer();

  DecisionServer(const DecisionServer&) = delete;
  DecisionServer& operator=(const DecisionServer&) = delete;

  std::int64_t duration_s() const noexcept { return duration_s_; }

  /// Optional observer called after each simulated second's fixed-order
  /// merge with the merged row — the hook behind --metrics-interval's
  /// periodic snapshot flushing.  Must be set before run().  The hook runs
  /// on the caller's thread, outside the parallel region; keep it cheap
  /// (it is on the serving loop's critical path).
  using SecondHook =
      std::function<void(std::int64_t second, const TelemetryRow& merged)>;
  void set_second_hook(SecondHook hook) { second_hook_ = std::move(hook); }

  /// Serve the configured duration and return the merged result.
  ServerResult run();

 private:
  struct Shard;
  void build_shards();
  void run_second(Shard& shard, std::int64_t second);

  ServerConfig config_;
  std::vector<StampedRequest> trace_;
  bool replay_ = false;
  std::int64_t duration_s_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  SecondHook second_hook_;
};

/// Generate the live-mode request streams for `duration_s` seconds and
/// return all requests merged and sorted by (arrival, id) — what
/// `scenario_runner trace record` writes.  Pure function of the config.
std::vector<StampedRequest> record_trace(const ServerConfig& config);

// --- rendering -------------------------------------------------------------

/// The telemetry CSV header line (column order is part of the format).
extern const char kTelemetryCsvHeader[];

/// One telemetry row in the CSV's byte-stable encoding (no newline-free
/// variant exists: the row ends with '\n').  write_telemetry_csv and the
/// telemetry scrape endpoint both funnel through this.
void write_telemetry_row(const TelemetryRow& row, std::ostream& os);

/// Deterministic telemetry CSV: one row per second, integer counters plus
/// CBP/CDP percentages derived from them (core::format_double — byte-stable
/// across runs, machines and thread counts).
void write_telemetry_csv(const ServerResult& result, std::ostream& os);
void write_telemetry_csv(const ServerResult& result, const std::string& path);

/// Wall-clock latency CSV (second, samples, p50/p95/p99/p99.9/mean/max ns).
/// NOT byte-stable — never diff this in CI.
void write_latency_csv(const ServerResult& result, std::ostream& os);
void write_latency_csv(const ServerResult& result, const std::string& path);

/// Run summary as JSON: totals, throughput, overall latency percentiles.
void write_summary_json(const ServerConfig& config, const ServerResult& result,
                        std::ostream& os);
void write_summary_json(const ServerConfig& config, const ServerResult& result,
                        const std::string& path);

/// Human-readable per-second view (decisions, CBP, CDP) as a sim::Figure
/// for aligned-table rendering on stdout.
sim::Figure telemetry_figure(const ServerResult& result);

}  // namespace facsp::serve
