#include "serve/rolling_window.h"

#include <cmath>

#include "common/expects.h"

namespace facsp::serve {

void TelemetryRow::merge(const TelemetryRow& other) noexcept {
  decisions += other.decisions;
  admitted += other.admitted;
  new_attempts += other.new_attempts;
  blocked_new += other.blocked_new;
  handoff_attempts += other.handoff_attempts;
  dropped_handoff += other.dropped_handoff;
  queue_depth += other.queue_depth;
  active_sessions += other.active_sessions;
}

RollingWindow::RollingWindow(double window_s) : window_s_(window_s) {
  FACSP_EXPECTS(window_s > 0.0);
}

std::int64_t RollingWindow::window_of(double t_s) const noexcept {
  return static_cast<std::int64_t>(std::floor(t_s / window_s_));
}

TelemetryRow& RollingWindow::row_for(std::int64_t w) {
  FACSP_EXPECTS(w >= 0);
  if (!rows_.empty()) {
    FACSP_EXPECTS(w >= rows_.back().window);
    if (w == rows_.back().window) return rows_.back();
  }
  // Open any windows skipped while idle so the CSV has a contiguous grid.
  std::int64_t next = rows_.empty() ? 0 : rows_.back().window + 1;
  for (; next <= w; ++next) {
    rows_.emplace_back();
    rows_.back().window = next;
  }
  return rows_.back();
}

}  // namespace facsp::serve
