#include "serve/request_stream.h"

#include <cmath>

#include "common/expects.h"

namespace facsp::serve {

namespace {

/// The generator spreads one second's arrivals over its configured window;
/// the serving clock ticks in whole seconds, so pin the window to 1 s
/// regardless of what the scenario used for its figure sweeps.
cellular::TrafficConfig per_second(cellular::TrafficConfig traffic) {
  traffic.arrival_window_s = 1.0;
  return traffic;
}

}  // namespace

WorkloadRequestStream::WorkloadRequestStream(
    const cellular::TrafficConfig& traffic, const cellular::HexLayout& layout,
    cellular::Point bs_position, cellular::DirectionPredictor::Config predictor,
    double handoff_fraction, int requests_per_s, const sim::RngFactory& rng,
    cellular::ConnectionId first_id)
    : bs_position_(bs_position),
      requests_per_s_(requests_per_s),
      handoff_fraction_(handoff_fraction),
      gen_(per_second(traffic), layout, cellular::HexCoord{0, 0}, bs_position,
           rng.stream("traffic"), first_id),
      predictor_(predictor, rng.stream("predictor")),
      kind_rng_(rng.stream("handoff-kind")) {
  FACSP_EXPECTS(requests_per_s >= 0);
  FACSP_EXPECTS(handoff_fraction >= 0.0 && handoff_fraction <= 1.0);
}

bool WorkloadRequestStream::next_second(
    std::int64_t second, std::vector<cac::AdmissionRequest>& reqs,
    std::vector<double>& holding_s) {
  gen_.generate_into(requests_per_s_, static_cast<double>(second), scratch_);
  for (const cellular::CallRequest& call : scratch_) {
    cac::AdmissionRequest& req = reqs.emplace_back();
    req.id = call.id;
    req.service = call.service;
    req.bandwidth = call.bandwidth;
    req.kind = kind_rng_.bernoulli(handoff_fraction_)
                   ? cellular::RequestKind::kHandoff
                   : cellular::RequestKind::kNew;
    req.priority = call.priority;
    req.speed_kmh = call.mobile.speed_kmh;
    req.angle_deg = predictor_.predict_angle_deg(call.mobile, bs_position_);
    req.distance_m = cellular::distance(call.mobile.position, bs_position_);
    req.mobile = call.mobile;
    req.now = call.arrival_time;
    holding_s.push_back(call.holding_time);
  }
  return true;  // live streams never run dry
}

TraceReplayStream::TraceReplayStream(const std::vector<StampedRequest>& trace,
                                     int shard, int shards)
    : trace_(trace), cursor_(0), shard_(shard), shards_(shards) {
  FACSP_EXPECTS(shards > 0 && shard >= 0 && shard < shards);
  while (cursor_ < trace_.size() &&
         static_cast<int>(cursor_ % static_cast<std::size_t>(shards_)) !=
             shard_)
    ++cursor_;
}

bool TraceReplayStream::next_second(std::int64_t second,
                                    std::vector<cac::AdmissionRequest>& reqs,
                                    std::vector<double>& holding_s) {
  const double end = static_cast<double>(second + 1);
  while (cursor_ < trace_.size() && trace_[cursor_].req.now < end) {
    FACSP_EXPECTS(trace_[cursor_].req.now >= static_cast<double>(second));
    reqs.push_back(trace_[cursor_].req);
    holding_s.push_back(trace_[cursor_].holding_s);
    cursor_ += static_cast<std::size_t>(shards_);
  }
  return cursor_ < trace_.size();
}

}  // namespace facsp::serve
