#include "serve/trace.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "common/error.h"
#include "core/config_io.h"
#include "core/report.h"

namespace facsp::serve {

const char kTraceHeader[] =
    "arrival_s,id,service,bandwidth_bu,kind,priority,speed_kmh,angle_deg,"
    "distance_m,holding_s,pos_x_m,pos_y_m,heading_deg";

namespace {

using core::format_double;

double parse_double(const std::string& cell, int row) {
  double v = 0.0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end)
    throw ParseError("trace: bad number '" + cell + "'", row);
  return v;
}

std::uint64_t parse_u64(const std::string& cell, int row) {
  std::uint64_t v = 0;
  const char* begin = cell.data();
  const char* end = begin + cell.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end)
    throw ParseError("trace: bad id '" + cell + "'", row);
  return v;
}

cellular::ServiceClass parse_service(const std::string& cell, int row) {
  for (const auto s : cellular::kAllServices)
    if (cell == cellular::service_name(s)) return s;
  throw ParseError("trace: unknown service '" + cell + "'", row);
}

cellular::UserPriority parse_priority(const std::string& cell, int row) {
  for (const auto p : cellular::kAllPriorities)
    if (cell == cellular::priority_name(p)) return p;
  throw ParseError("trace: unknown priority '" + cell + "'", row);
}

cellular::RequestKind parse_kind(const std::string& cell, int row) {
  if (cell == "new") return cellular::RequestKind::kNew;
  if (cell == "handoff") return cellular::RequestKind::kHandoff;
  throw ParseError("trace: unknown kind '" + cell + "'", row);
}

}  // namespace

void write_trace(const std::vector<StampedRequest>& records,
                 std::ostream& os) {
  os << kTraceHeader << '\n';
  for (const StampedRequest& r : records) {
    os << format_double(r.req.now) << ',' << r.req.id << ','
       << cellular::service_name(r.req.service) << ','
       << format_double(r.req.bandwidth) << ','
       << (r.req.kind == cellular::RequestKind::kHandoff ? "handoff" : "new")
       << ',' << cellular::priority_name(r.req.priority) << ','
       << format_double(r.req.speed_kmh) << ','
       << format_double(r.req.angle_deg) << ','
       << format_double(r.req.distance_m) << ','
       << format_double(r.holding_s) << ','
       << format_double(r.req.mobile.position.x) << ','
       << format_double(r.req.mobile.position.y) << ','
       << format_double(r.req.mobile.heading_deg) << '\n';
  }
}

void write_trace_file(const std::vector<StampedRequest>& records,
                      const std::string& path) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  write_trace(records, os);
  if (!os) throw Error("failed writing '" + path + "'");
}

std::vector<StampedRequest> read_trace(std::istream& is) {
  const core::CsvTable table = core::read_csv(is);
  {
    std::ostringstream header;
    for (std::size_t i = 0; i < table.columns.size(); ++i)
      header << (i != 0 ? "," : "") << table.columns[i];
    if (header.str() != kTraceHeader)
      throw ParseError("trace: header mismatch, expected '" +
                           std::string(kTraceHeader) + "', got '" +
                           header.str() + "'",
                       1);
  }
  std::vector<StampedRequest> records;
  records.reserve(table.rows.size());
  int rowno = 1;
  for (const auto& cells : table.rows) {
    ++rowno;
    StampedRequest r;
    r.req.now = parse_double(cells[0], rowno);
    r.req.id = parse_u64(cells[1], rowno);
    r.req.service = parse_service(cells[2], rowno);
    r.req.bandwidth = parse_double(cells[3], rowno);
    r.req.kind = parse_kind(cells[4], rowno);
    r.req.priority = parse_priority(cells[5], rowno);
    r.req.speed_kmh = parse_double(cells[6], rowno);
    r.req.angle_deg = parse_double(cells[7], rowno);
    r.req.distance_m = parse_double(cells[8], rowno);
    r.holding_s = parse_double(cells[9], rowno);
    r.req.mobile.position.x = parse_double(cells[10], rowno);
    r.req.mobile.position.y = parse_double(cells[11], rowno);
    r.req.mobile.heading_deg = parse_double(cells[12], rowno);
    r.req.mobile.speed_kmh = r.req.speed_kmh;
    records.push_back(r);
  }
  return records;
}

std::vector<StampedRequest> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open trace '" + path + "'");
  return read_trace(is);
}

}  // namespace facsp::serve
