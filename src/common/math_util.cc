#include "common/math_util.h"

#include <algorithm>
#include <cmath>

namespace facsp {

bool approx_equal(double a, double b, double rel_tol, double abs_tol) noexcept {
  if (a == b) return true;  // covers infinities of the same sign
  if (!std::isfinite(a) || !std::isfinite(b)) return false;
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= std::max(abs_tol, rel_tol * scale);
}

double wrap_angle_deg(double deg) noexcept {
  double x = std::fmod(deg, 360.0);
  if (x <= -180.0) x += 360.0;
  if (x > 180.0) x -= 360.0;
  return x;
}

double angle_distance_deg(double a, double b) noexcept {
  const double d = std::fabs(wrap_angle_deg(a - b));
  return d > 180.0 ? 360.0 - d : d;
}

}  // namespace facsp
