// Precondition / postcondition checking in the spirit of the C++ Core
// Guidelines (I.5/I.6, I.7/I.8).  Violations throw facsp::ContractViolation so
// tests can assert on them and callers get a diagnosable error instead of UB.
#pragma once

#include "common/error.h"

#include <sstream>
#include <string>

namespace facsp::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace facsp::detail

// FACSP_EXPECTS(cond): precondition; throws facsp::ContractViolation on failure.
#define FACSP_EXPECTS(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::facsp::detail::contract_failure("Precondition", #cond, __FILE__,     \
                                        __LINE__, std::string{});            \
  } while (false)

// FACSP_EXPECTS_MSG(cond, msg): precondition with a human-readable context
// message (msg may be any streamable expression chain built by the caller).
#define FACSP_EXPECTS_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream facsp_expects_os_;                                  \
      facsp_expects_os_ << msg;                                              \
      ::facsp::detail::contract_failure("Precondition", #cond, __FILE__,     \
                                        __LINE__, facsp_expects_os_.str());  \
    }                                                                        \
  } while (false)

// FACSP_ENSURES(cond): postcondition / invariant check.
#define FACSP_ENSURES(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::facsp::detail::contract_failure("Postcondition", #cond, __FILE__,    \
                                        __LINE__, std::string{});            \
  } while (false)
