// Exception hierarchy for the FACS-P library.
//
// All library errors derive from facsp::Error so applications can catch one
// type at the boundary.  Construction-time validation failures (bad membership
// function geometry, malformed rule bases, inconsistent scenario parameters)
// throw ConfigError; violated API contracts throw ContractViolation.
#pragma once

#include <stdexcept>
#include <string>

namespace facsp {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid configuration detected while constructing a component
/// (e.g. non-monotonic trapezoid breakpoints, duplicate linguistic terms).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A precondition/postcondition of a library API was violated by the caller.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// Error while parsing a textual artifact (fuzzy rule file, scenario file).
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line)
      : Error(what + " (line " + std::to_string(line) + ")"), line_(line) {}
  explicit ParseError(const std::string& what) : Error(what), line_(-1) {}

  /// 1-based line number of the offending input, or -1 if unknown.
  int line() const noexcept { return line_; }

 private:
  int line_;
};

}  // namespace facsp
