#include "common/error.h"

// Out-of-line anchor so the vtables for the exception hierarchy are emitted
// exactly once (avoids weak-vtable duplication across every TU).
namespace facsp {
namespace {
[[maybe_unused]] void anchor() {
  Error e{"anchor"};
  (void)e;
}
}  // namespace
}  // namespace facsp
