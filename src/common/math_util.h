// Small numeric helpers shared across the library.
#pragma once

#include <cmath>
#include <limits>

namespace facsp {

inline constexpr double kPi = 3.14159265358979323846;

/// Relative+absolute tolerant floating-point comparison.
/// Returns true when |a-b| <= max(abs_tol, rel_tol*max(|a|,|b|)).
bool approx_equal(double a, double b, double rel_tol = 1e-9,
                  double abs_tol = 1e-12) noexcept;

/// Linear interpolation: a + t*(b-a).  t outside [0,1] extrapolates.
constexpr double lerp(double a, double b, double t) noexcept {
  return a + t * (b - a);
}

/// Clamp x into [lo, hi].  Requires lo <= hi.
constexpr double clamp(double x, double lo, double hi) noexcept {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Degrees -> radians.
constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }

/// Radians -> degrees.
constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }

/// Normalise an angle in degrees into (-180, 180].
double wrap_angle_deg(double deg) noexcept;

/// Smallest absolute angular difference |a-b| in degrees, result in [0, 180].
double angle_distance_deg(double a, double b) noexcept;

/// True if x is a finite real number (not NaN/inf).
inline bool is_finite(double x) noexcept { return std::isfinite(x); }

/// Positive infinity shorthand.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace facsp
