// Fuzzy Rule Base (FRB): the validated rule set of one controller.
//
// Paper Sec. 3.1: "The FRB forms a fuzzy set of dimensions
// |T(Sp)| x |T(An)| x |T(Sr)|" — i.e. a complete table with one rule per
// combination of input terms.  RuleBase supports both complete tabular rule
// bases (FRB1: 63 rules, FRB2: 27 rules) and sparse ones, and can check
// completeness and detect conflicting duplicates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fuzzy/rule.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Immutable, validated collection of fuzzy rules tied to a fixed set of
/// input variables and one output variable (held by the controller; the rule
/// base stores only shapes and indices).
class RuleBase {
 public:
  /// Validates every rule against the given variables:
  ///  - antecedent arity must equal inputs.size(),
  ///  - every non-wildcard antecedent index must be in range,
  ///  - consequent index must be in range,
  ///  - weight must be in (0, 1].
  /// Throws facsp::ConfigError on violation.
  RuleBase(std::vector<FuzzyRule> rules,
           const std::vector<LinguisticVariable>& inputs,
           const LinguisticVariable& output);

  std::size_t size() const noexcept { return rules_.size(); }
  bool empty() const noexcept { return rules_.empty(); }
  const FuzzyRule& rule(std::size_t i) const;
  const std::vector<FuzzyRule>& rules() const noexcept { return rules_; }

  std::size_t input_count() const noexcept { return input_term_counts_.size(); }
  std::size_t output_term_count() const noexcept { return output_term_count_; }

  /// True when every combination of input terms is matched by at least one
  /// rule (wildcards match everything).  FRB1 and FRB2 are complete.
  bool is_complete() const;

  /// Indices of rule pairs with identical (after wildcard expansion —
  /// compared structurally, not expanded) antecedents but different
  /// consequents.  An empty result means the rule base is conflict-free.
  std::vector<std::pair<std::size_t, std::size_t>> conflicts() const;

  /// Number of distinct input-term combinations (product of term counts).
  std::size_t combination_count() const noexcept;

  /// Build a complete tabular rule base from a flat consequent table laid out
  /// with the *last* input varying fastest (exactly the row order of the
  /// paper's Table 1/Table 2).  `consequent_names` has
  /// combination_count() entries, each naming a term of `output`.
  static RuleBase from_table(const std::vector<LinguisticVariable>& inputs,
                             const LinguisticVariable& output,
                             const std::vector<std::string>& consequent_names);

 private:
  std::vector<FuzzyRule> rules_;
  std::vector<std::size_t> input_term_counts_;
  std::size_t output_term_count_;
};

}  // namespace facsp::fuzzy
