// Takagi-Sugeno(-Kang) inference — an extension beyond the paper.
//
// Where the Mamdani pipeline clips output *fuzzy sets* and defuzzifies,
// a Sugeno rule's consequent is a crisp function of the inputs
// (zero-order: a constant; first-order: affine), and the controller output
// is the firing-strength-weighted average of rule outputs:
//
//     y = sum_i w_i * z_i(x) / sum_i w_i.
//
// Sugeno controllers are cheaper (no output integration) and are the
// common choice when CAC decisions must run per-packet; bench users can
// compare against the paper's Mamdani FLCs via make_sugeno_flc2().
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "fuzzy/inference.h"  // TNorm
#include "fuzzy/rule.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// One Sugeno rule: conjunctive antecedents over the input variables and
/// an affine consequent z(x) = constant + sum_j coefficients[j] * x_j.
struct SugenoRule {
  std::vector<std::size_t> antecedents;  ///< term index per input, or kAny
  double constant = 0.0;
  /// Empty for zero-order rules; else one coefficient per input variable.
  std::vector<double> coefficients;
  double weight = 1.0;

  static constexpr std::size_t kAny = FuzzyRule::kAny;
};

/// Crisp-in / crisp-out Sugeno controller.
class SugenoController {
 public:
  /// Validates rules against the input variables (same rules as RuleBase:
  /// arity, term indices, weight in (0,1]; coefficients empty or one per
  /// input).  Throws facsp::ConfigError.
  SugenoController(std::string name, std::vector<LinguisticVariable> inputs,
                   std::vector<SugenoRule> rules, TNorm t_norm = TNorm::kProduct);

  /// Weighted-average output; inputs clamped to their universes.  When no
  /// rule fires, returns 0 (the natural neutral of a weighted average).
  double evaluate(std::span<const double> crisp_inputs) const;
  double evaluate(std::initializer_list<double> crisp_inputs) const;

  const std::string& name() const noexcept { return name_; }
  std::size_t input_count() const noexcept { return inputs_.size(); }
  const LinguisticVariable& input(std::size_t i) const;
  std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  std::string name_;
  std::vector<LinguisticVariable> inputs_;
  std::vector<SugenoRule> rules_;
  TNorm t_norm_;
};

}  // namespace facsp::fuzzy
