// Fluent builders for linguistic variables and controllers.
//
// Example:
//   auto speed = VariableBuilder("Sp", 0, 120)
//                    .triangular("Sl", 0, 60, 60)      // clamped left edge
//                    .triangular("Mi", 60, 60, 60)
//                    .right_shoulder("Fa", 120, 60)
//                    .build();
//   auto flc = ControllerBuilder("demo")
//                  .input(speed).input(angle).input(service)
//                  .output(correction)
//                  .rule("IF Sp is Sl AND An is B1 AND Sr is Sm THEN Cv is Cv1")
//                  ...
//                  .build();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fuzzy/controller.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Incrementally assembles a LinguisticVariable.
class VariableBuilder {
 public:
  VariableBuilder(std::string name, double universe_lo, double universe_hi);

  /// Paper's f(x; center, left_width, right_width).
  VariableBuilder& triangular(std::string term, double center,
                              double left_width, double right_width);
  /// Paper's g(x; plateau_lo, plateau_hi, left_width, right_width).
  VariableBuilder& trapezoidal(std::string term, double plateau_lo,
                               double plateau_hi, double left_width,
                               double right_width);
  /// Plateau from the universe's low edge up to plateau_hi.
  VariableBuilder& left_shoulder(std::string term, double plateau_hi,
                                 double right_width);
  /// Plateau from plateau_lo up to the universe's high edge.
  VariableBuilder& right_shoulder(std::string term, double plateau_lo,
                                  double left_width);
  /// Arbitrary membership function.
  VariableBuilder& term(std::string term, MembershipFunction mf);

  /// Evenly spaced triangular partition with `count` terms named
  /// prefix1..prefixN; first/last become shoulders so the universe is fully
  /// covered (used for the Cv1..Cv9 output in FLC1).
  VariableBuilder& uniform_partition(const std::string& prefix, int count);

  /// Validates and constructs the variable (throws facsp::ConfigError).
  LinguisticVariable build() const;

 private:
  std::string name_;
  double lo_, hi_;
  std::vector<LinguisticTerm> terms_;
};

/// Incrementally assembles a FuzzyController.
class ControllerBuilder {
 public:
  explicit ControllerBuilder(std::string name);

  ControllerBuilder& input(LinguisticVariable v);
  ControllerBuilder& output(LinguisticVariable v);

  /// Add one rule in textual form (see rule_parser.h for the grammar).
  ControllerBuilder& rule(const std::string& text);

  /// Add one rule by explicit term names, one per input in declaration
  /// order; "*" is the wildcard.
  ControllerBuilder& rule(const std::vector<std::string>& antecedent_terms,
                          const std::string& consequent_term,
                          double weight = 1.0);

  /// Add a complete tabular rule base (last input varies fastest), as the
  /// paper's Table 1 / Table 2 are printed.
  ControllerBuilder& rule_table(const std::vector<std::string>& consequents);

  ControllerBuilder& inference(InferenceOptions options);
  ControllerBuilder& defuzzifier(Defuzzifier d);

  /// Validates and constructs the controller (throws facsp::ConfigError if
  /// no output was set, no rules were added, or validation fails).
  std::unique_ptr<FuzzyController> build();

 private:
  std::string name_;
  std::vector<LinguisticVariable> inputs_;
  std::vector<LinguisticVariable> output_;  // 0 or 1 elements
  std::vector<FuzzyRule> rules_;
  std::vector<std::string> pending_table_;
  InferenceOptions inference_{};
  Defuzzifier defuzz_{};
};

}  // namespace facsp::fuzzy
