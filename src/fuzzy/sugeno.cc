#include "fuzzy/sugeno.h"

#include <algorithm>

#include "common/error.h"
#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::fuzzy {

SugenoController::SugenoController(std::string name,
                                   std::vector<LinguisticVariable> inputs,
                                   std::vector<SugenoRule> rules, TNorm t_norm)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      rules_(std::move(rules)),
      t_norm_(t_norm) {
  if (inputs_.empty())
    throw ConfigError("sugeno '" + name_ + "': needs at least one input");
  if (rules_.empty())
    throw ConfigError("sugeno '" + name_ + "': needs at least one rule");
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const auto& rule = rules_[r];
    if (rule.antecedents.size() != inputs_.size())
      throw ConfigError("sugeno '" + name_ + "': rule " + std::to_string(r) +
                        " arity mismatch");
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      const auto a = rule.antecedents[i];
      if (a != SugenoRule::kAny && a >= inputs_[i].term_count())
        throw ConfigError("sugeno '" + name_ + "': rule " +
                          std::to_string(r) + " term index out of range");
    }
    if (!rule.coefficients.empty() &&
        rule.coefficients.size() != inputs_.size())
      throw ConfigError("sugeno '" + name_ + "': rule " + std::to_string(r) +
                        " must have one coefficient per input (or none)");
    if (!(rule.weight > 0.0 && rule.weight <= 1.0))
      throw ConfigError("sugeno '" + name_ + "': rule " + std::to_string(r) +
                        " weight must be in (0, 1]");
  }
}

const LinguisticVariable& SugenoController::input(std::size_t i) const {
  FACSP_EXPECTS(i < inputs_.size());
  return inputs_[i];
}

double SugenoController::evaluate(std::span<const double> crisp_inputs) const {
  FACSP_EXPECTS_MSG(crisp_inputs.size() == inputs_.size(),
                    "sugeno '" << name_ << "': expected " << inputs_.size()
                               << " inputs, got " << crisp_inputs.size());
  std::vector<double> x(inputs_.size());
  std::vector<std::vector<double>> grades(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    x[i] = clamp(crisp_inputs[i], inputs_[i].universe_lo(),
                 inputs_[i].universe_hi());
    grades[i] = inputs_[i].fuzzify(x[i]);
  }

  double num = 0.0, den = 0.0;
  for (const auto& rule : rules_) {
    double w = 1.0;
    for (std::size_t i = 0; i < inputs_.size() && w > 0.0; ++i) {
      const auto a = rule.antecedents[i];
      if (a == SugenoRule::kAny) continue;
      const double g = grades[i][a];
      w = t_norm_ == TNorm::kMinimum ? std::min(w, g) : w * g;
    }
    w *= rule.weight;
    if (w <= 0.0) continue;
    double z = rule.constant;
    for (std::size_t i = 0; i < rule.coefficients.size(); ++i)
      z += rule.coefficients[i] * x[i];
    num += w * z;
    den += w;
  }
  return den > 0.0 ? num / den : 0.0;
}

double SugenoController::evaluate(
    std::initializer_list<double> crisp_inputs) const {
  return evaluate(
      std::span<const double>(crisp_inputs.begin(), crisp_inputs.size()));
}

}  // namespace facsp::fuzzy
