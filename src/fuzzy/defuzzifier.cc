#include "fuzzy/defuzzifier.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/expects.h"

namespace facsp::fuzzy {

const char* to_string(DefuzzMethod m) noexcept {
  switch (m) {
    case DefuzzMethod::kCentroid: return "centroid";
    case DefuzzMethod::kBisector: return "bisector";
    case DefuzzMethod::kMeanOfMaximum: return "mom";
    case DefuzzMethod::kSmallestOfMaximum: return "som";
    case DefuzzMethod::kLargestOfMaximum: return "lom";
    case DefuzzMethod::kWeightedAverage: return "wavg";
  }
  return "centroid";
}

DefuzzMethod defuzz_method_from_string(std::string_view name) {
  if (name == "centroid") return DefuzzMethod::kCentroid;
  if (name == "bisector") return DefuzzMethod::kBisector;
  if (name == "mom") return DefuzzMethod::kMeanOfMaximum;
  if (name == "som") return DefuzzMethod::kSmallestOfMaximum;
  if (name == "lom") return DefuzzMethod::kLargestOfMaximum;
  if (name == "wavg") return DefuzzMethod::kWeightedAverage;
  throw ConfigError("unknown defuzzification method '" + std::string(name) +
                    "' (expected centroid|bisector|mom|som|lom|wavg)");
}

Defuzzifier::Defuzzifier(DefuzzMethod method, int resolution, SNorm aggregation)
    : method_(method), resolution_(resolution), aggregation_(aggregation) {
  if (resolution_ < 8)
    throw ConfigError("defuzzifier: resolution must be >= 8");
}

double Defuzzifier::defuzzify(const OutputFuzzySet& set,
                              const LinguisticVariable& output) const {
  FACSP_EXPECTS(set.activations.size() == output.term_count());
  if (set.empty())
    return 0.5 * (output.universe_lo() + output.universe_hi());
  switch (method_) {
    case DefuzzMethod::kCentroid:
      return centroid(set, output);
    case DefuzzMethod::kBisector:
      return bisector(set, output);
    case DefuzzMethod::kMeanOfMaximum:
    case DefuzzMethod::kSmallestOfMaximum:
    case DefuzzMethod::kLargestOfMaximum:
      return of_maximum(set, output);
    case DefuzzMethod::kWeightedAverage:
      return weighted_average(set, output);
  }
  return centroid(set, output);  // unreachable
}

double Defuzzifier::centroid(const OutputFuzzySet& set,
                             const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  double num = 0.0, den = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    const double y = lo + i * dy;
    // Trapezoidal quadrature: halve the end samples.
    const double w = (i == 0 || i == resolution_ - 1) ? 0.5 : 1.0;
    const double mu = set.grade(output, y, aggregation_) * w;
    num += mu * y;
    den += mu;
  }
  if (den <= 0.0) return 0.5 * (lo + hi);
  return num / den;
}

double Defuzzifier::bisector(const OutputFuzzySet& set,
                             const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  std::vector<double> mu(static_cast<std::size_t>(resolution_));
  double total = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    mu[i] = set.grade(output, lo + i * dy, aggregation_);
    total += mu[i];
  }
  if (total <= 0.0) return 0.5 * (lo + hi);
  double acc = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    acc += mu[i];
    if (acc >= 0.5 * total) return lo + i * dy;
  }
  return hi;
}

double Defuzzifier::of_maximum(const OutputFuzzySet& set,
                               const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  double max_mu = 0.0;
  for (int i = 0; i < resolution_; ++i)
    max_mu = std::max(max_mu, set.grade(output, lo + i * dy, aggregation_));
  if (max_mu <= 0.0) return 0.5 * (lo + hi);

  const double tol = 1e-9;
  double first = hi, last = lo, sum = 0.0;
  int count = 0;
  for (int i = 0; i < resolution_; ++i) {
    const double y = lo + i * dy;
    if (set.grade(output, y, aggregation_) >= max_mu - tol) {
      first = std::min(first, y);
      last = std::max(last, y);
      sum += y;
      ++count;
    }
  }
  switch (method_) {
    case DefuzzMethod::kSmallestOfMaximum: return first;
    case DefuzzMethod::kLargestOfMaximum: return last;
    default: return sum / count;
  }
}

double Defuzzifier::weighted_average(const OutputFuzzySet& set,
                                     const LinguisticVariable& output) const {
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < set.activations.size(); ++k) {
    const double a = set.activations[k];
    if (a <= 0.0) continue;
    num += a * output.term(k).mf.core_center();
    den += a;
  }
  if (den <= 0.0)
    return 0.5 * (output.universe_lo() + output.universe_hi());
  return num / den;
}

}  // namespace facsp::fuzzy
