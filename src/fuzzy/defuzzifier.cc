#include "fuzzy/defuzzifier.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/expects.h"

namespace facsp::fuzzy {

const char* to_string(DefuzzMethod m) noexcept {
  switch (m) {
    case DefuzzMethod::kCentroid: return "centroid";
    case DefuzzMethod::kBisector: return "bisector";
    case DefuzzMethod::kMeanOfMaximum: return "mom";
    case DefuzzMethod::kSmallestOfMaximum: return "som";
    case DefuzzMethod::kLargestOfMaximum: return "lom";
    case DefuzzMethod::kWeightedAverage: return "wavg";
  }
  return "centroid";
}

DefuzzMethod defuzz_method_from_string(std::string_view name) {
  if (name == "centroid") return DefuzzMethod::kCentroid;
  if (name == "bisector") return DefuzzMethod::kBisector;
  if (name == "mom") return DefuzzMethod::kMeanOfMaximum;
  if (name == "som") return DefuzzMethod::kSmallestOfMaximum;
  if (name == "lom") return DefuzzMethod::kLargestOfMaximum;
  if (name == "wavg") return DefuzzMethod::kWeightedAverage;
  throw ConfigError("unknown defuzzification method '" + std::string(name) +
                    "' (expected centroid|bisector|mom|som|lom|wavg)");
}

Defuzzifier::Defuzzifier(DefuzzMethod method, int resolution, SNorm aggregation)
    : method_(method), resolution_(resolution), aggregation_(aggregation) {
  if (resolution_ < 8)
    throw ConfigError("defuzzifier: resolution must be >= 8");
}

void Defuzzifier::prime(const LinguisticVariable& output) {
  if (method_ == DefuzzMethod::kWeightedAverage) {
    // Weighted average reads only term core centres — no grid to precompute.
    grid_.reset();
    return;
  }
  auto grid = std::make_shared<Grid>();
  grid->variable = &output;
  grid->resolution = resolution_;
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  const std::size_t n = static_cast<std::size_t>(resolution_);
  const std::size_t terms = output.term_count();
  grid->ys.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    grid->ys[i] = lo + static_cast<double>(i) * dy;
  grid->term_grades.resize(terms * n);
  for (std::size_t k = 0; k < terms; ++k) {
    const MembershipFunction& mf = output.term(k).mf;
    double* row = grid->term_grades.data() + k * n;
    for (std::size_t i = 0; i < n; ++i) row[i] = mf.grade(grid->ys[i]);
  }
  grid_ = std::move(grid);
}

bool Defuzzifier::primed_for(const LinguisticVariable& output) const noexcept {
  // The shape check guards the address key: if a new variable reuses a
  // destroyed variable's address with a different term count, the stale
  // grid must not match.
  return grid_ != nullptr && grid_->variable == &output &&
         grid_->resolution == resolution_ &&
         grid_->term_grades.size() == output.term_count() * grid_->ys.size();
}

double Defuzzifier::defuzzify(const OutputFuzzySet& set,
                              const LinguisticVariable& output) const {
  static thread_local std::vector<double> mu_scratch;
  return defuzzify(set.activations, set.implication, output, mu_scratch);
}

double Defuzzifier::defuzzify(std::span<const double> activations,
                              Implication implication,
                              const LinguisticVariable& output,
                              std::vector<double>& mu_scratch) const {
  FACSP_EXPECTS(activations.size() == output.term_count());
  bool empty = true;
  for (double a : activations) {
    if (a > 0.0) {
      empty = false;
      break;
    }
  }
  if (empty) return 0.5 * (output.universe_lo() + output.universe_hi());

  if (method_ == DefuzzMethod::kWeightedAverage)
    return weighted_average(activations, output);
  if (primed_for(output))
    return defuzzify_grid(*grid_, activations, implication, output,
                          mu_scratch);
  switch (method_) {
    case DefuzzMethod::kCentroid:
      return centroid(activations, implication, output);
    case DefuzzMethod::kBisector:
      return bisector(activations, implication, output, mu_scratch);
    default:
      return of_maximum(activations, implication, output);
  }
}

double Defuzzifier::aggregate_at(std::span<const double> activations,
                                 Implication impl,
                                 const LinguisticVariable& output,
                                 double y) const {
  double acc = 0.0;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    if (activations[k] <= 0.0) continue;
    const double g =
        apply_implication(impl, activations[k], output.term(k).mf.grade(y));
    acc = apply_snorm(aggregation_, acc, g);
  }
  return acc;
}

double Defuzzifier::defuzzify_grid(const Grid& grid,
                                   std::span<const double> activations,
                                   Implication impl,
                                   const LinguisticVariable& output,
                                   std::vector<double>& mu_scratch) const {
  const std::size_t n = grid.ys.size();
  const double* const ys = grid.ys.data();
  // Aggregate the clipped/scaled term columns into the sample buffer.  Term
  // order matches the naive path, so the float accumulation is identical.
  mu_scratch.assign(n, 0.0);
  double* const mu = mu_scratch.data();
  for (std::size_t k = 0; k < activations.size(); ++k) {
    const double a = activations[k];
    if (a <= 0.0) continue;
    const double* row = grid.term_grades.data() + k * n;
    for (std::size_t i = 0; i < n; ++i)
      mu[i] = apply_snorm(aggregation_, mu[i], apply_implication(impl, a, row[i]));
  }

  const double mid = 0.5 * (output.universe_lo() + output.universe_hi());
  switch (method_) {
    case DefuzzMethod::kCentroid:
    case DefuzzMethod::kBisector: {
      // One shared accumulation pass: trapezoid-weighted moments for the
      // centroid, the unweighted mass for the bisector.
      double num = 0.0, den = 0.0, total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double w = (i == 0 || i == n - 1) ? 0.5 : 1.0;
        const double m = mu[i] * w;
        num += m * ys[i];
        den += m;
        total += mu[i];
      }
      if (method_ == DefuzzMethod::kCentroid)
        return den <= 0.0 ? mid : num / den;
      if (total <= 0.0) return mid;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += mu[i];
        if (acc >= 0.5 * total) return ys[i];
      }
      return output.universe_hi();
    }
    default: {
      double max_mu = 0.0;
      for (std::size_t i = 0; i < n; ++i) max_mu = std::max(max_mu, mu[i]);
      if (max_mu <= 0.0) return mid;
      const double tol = 1e-9;
      double first = output.universe_hi(), last = output.universe_lo();
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mu[i] >= max_mu - tol) {
          first = std::min(first, ys[i]);
          last = std::max(last, ys[i]);
          sum += ys[i];
          ++count;
        }
      }
      switch (method_) {
        case DefuzzMethod::kSmallestOfMaximum: return first;
        case DefuzzMethod::kLargestOfMaximum: return last;
        default: return sum / static_cast<double>(count);
      }
    }
  }
}

double Defuzzifier::centroid(std::span<const double> activations,
                             Implication impl,
                             const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  double num = 0.0, den = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    const double y = lo + i * dy;
    // Trapezoidal quadrature: halve the end samples.
    const double w = (i == 0 || i == resolution_ - 1) ? 0.5 : 1.0;
    const double mu = aggregate_at(activations, impl, output, y) * w;
    num += mu * y;
    den += mu;
  }
  if (den <= 0.0) return 0.5 * (lo + hi);
  return num / den;
}

double Defuzzifier::bisector(std::span<const double> activations,
                             Implication impl,
                             const LinguisticVariable& output,
                             std::vector<double>& mu_scratch) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  mu_scratch.resize(static_cast<std::size_t>(resolution_));
  double total = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    mu_scratch[i] = aggregate_at(activations, impl, output, lo + i * dy);
    total += mu_scratch[i];
  }
  if (total <= 0.0) return 0.5 * (lo + hi);
  double acc = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    acc += mu_scratch[i];
    if (acc >= 0.5 * total) return lo + i * dy;
  }
  return hi;
}

double Defuzzifier::of_maximum(std::span<const double> activations,
                               Implication impl,
                               const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  double max_mu = 0.0;
  for (int i = 0; i < resolution_; ++i)
    max_mu = std::max(max_mu,
                      aggregate_at(activations, impl, output, lo + i * dy));
  if (max_mu <= 0.0) return 0.5 * (lo + hi);

  const double tol = 1e-9;
  double first = hi, last = lo, sum = 0.0;
  int count = 0;
  for (int i = 0; i < resolution_; ++i) {
    const double y = lo + i * dy;
    if (aggregate_at(activations, impl, output, y) >= max_mu - tol) {
      first = std::min(first, y);
      last = std::max(last, y);
      sum += y;
      ++count;
    }
  }
  switch (method_) {
    case DefuzzMethod::kSmallestOfMaximum: return first;
    case DefuzzMethod::kLargestOfMaximum: return last;
    default: return sum / count;
  }
}

double Defuzzifier::weighted_average(std::span<const double> activations,
                                     const LinguisticVariable& output) const {
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    const double a = activations[k];
    if (a <= 0.0) continue;
    num += a * output.term(k).mf.core_center();
    den += a;
  }
  if (den <= 0.0)
    return 0.5 * (output.universe_lo() + output.universe_hi());
  return num / den;
}

}  // namespace facsp::fuzzy
