#include "fuzzy/defuzzifier.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/expects.h"

namespace facsp::fuzzy {

namespace {

// --- analytic alpha-cut centroid -------------------------------------------
//
// Under min (clip) or product (scale) implication an implicated
// piecewise-linear term is the pointwise MIN of at most three affine
// functions of y: the alpha plateau, the (scaled) rising edge and the
// (scaled) falling edge.  A min of affine functions is concave piecewise
// linear, so its only breakpoints are pairwise line crossings and it can be
// integrated exactly with the trapezoid rule between consecutive crossings
// — no term-piece domain bookkeeping at all.

/// A small bag of affine functions y -> s*y + t representing one concave
/// min.  Capacity 6: {plateau, rise, fall} for each term of an adjacent
/// overlap pair.
struct AffineMin {
  double s[6];
  double t[6];
  int n = 0;

  void add(double slope, double intercept) noexcept {
    s[n] = slope;
    t[n] = intercept;
    ++n;
  }

  double eval(double x) const noexcept {
    double v = s[0] * x + t[0];
    for (int i = 1; i < n; ++i) {
      const double w = s[i] * x + t[i];
      v = w < v ? w : v;
    }
    return v;
  }
};

/// Exactly integrate m(y) = min_i(s_i*y + t_i) over [x0, x1], adding
/// sign * (area, first moment) into the accumulators.  Between consecutive
/// pairwise crossings m is affine, so the trapezoid rule is exact; the
/// closed-form first moment of an affine segment is
///   integral y*m(y) dy = h/6 * (m0*(2*x0 + x1) + m1*(x0 + 2*x1)).
void integrate_concave_min(const AffineMin& f, double x0, double x1,
                           double sign, double& area,
                           double& moment) noexcept {
  if (!(x0 < x1)) return;
  double xs[2 + 15];  // endpoints + C(6,2) pairwise crossings
  int m = 0;
  xs[m++] = x0;
  for (int i = 0; i < f.n; ++i) {
    for (int j = i + 1; j < f.n; ++j) {
      const double ds = f.s[i] - f.s[j];
      if (ds == 0.0) continue;
      const double x = (f.t[j] - f.t[i]) / ds;
      if (x > x0 && x < x1) xs[m++] = x;
    }
  }
  xs[m++] = x1;
  // Candidates arrive nearly sorted; insertion sort is O(m) then.
  for (int i = 1; i < m; ++i) {
    const double v = xs[i];
    int j = i - 1;
    for (; j >= 0 && xs[j] > v; --j) xs[j + 1] = xs[j];
    xs[j + 1] = v;
  }
  double xp = xs[0];
  double mp = f.eval(xp);
  for (int i = 1; i < m; ++i) {
    const double x = xs[i];
    if (!(x > xp)) continue;
    const double mu = f.eval(x);
    const double h = x - xp;
    area += sign * (0.5 * h * (mp + mu));
    moment += sign * (h * (mp * (2.0 * xp + x) + mu * (xp + 2.0 * x)) / 6.0);
    xp = x;
    mp = mu;
  }
}

/// Append the affine pieces of one implicated term.  Valid on the term's
/// support (where rise/fall are non-negative), which is exactly where it is
/// integrated.  Min implication clips at alpha; product scales by alpha —
/// in both cases the plateau line is the constant alpha (alpha * 1).
void implicated_term_lines(const MembershipFunction& mf, double alpha,
                           Implication impl, AffineMin& f) noexcept {
  const double scale = impl == Implication::kProduct ? alpha : 1.0;
  f.add(0.0, alpha);
  const double a = mf.a(), b = mf.b(), c = mf.c(), d = mf.d();
  if (std::isfinite(b) && b > a) f.add(scale / (b - a), -scale * a / (b - a));
  if (std::isfinite(c) && d > c) f.add(-scale / (d - c), scale * d / (d - c));
}

/// The analytic decomposition needs the output terms to be sorted left to
/// right with at most adjacent-pair support overlap: then no y has three
/// positive terms, and max over terms = sum of terms minus the min over each
/// adjacent overlapping pair (inclusion-exclusion that terminates at pairs).
/// Every paper output variable (Cv's 9-term and A/R's 5-term uniform
/// partitions) satisfies this; anything else falls back to the grid.
bool ordered_adjacent_partition(const LinguisticVariable& v) noexcept {
  const auto& terms = v.terms();
  const std::size_t n = terms.size();
  for (std::size_t k = 0; k < n; ++k) {
    const MembershipFunction& mf = terms[k].mf;
    if (k + 1 < n) {
      const MembershipFunction& nx = terms[k + 1].mf;
      if (!(mf.a() <= nx.a() && mf.d() <= nx.d())) return false;
    }
    if (k + 2 < n && !(mf.d() <= terms[k + 2].mf.a())) return false;
  }
  return true;
}

}  // namespace

const char* to_string(DefuzzMethod m) noexcept {
  switch (m) {
    case DefuzzMethod::kCentroid: return "centroid";
    case DefuzzMethod::kBisector: return "bisector";
    case DefuzzMethod::kMeanOfMaximum: return "mom";
    case DefuzzMethod::kSmallestOfMaximum: return "som";
    case DefuzzMethod::kLargestOfMaximum: return "lom";
    case DefuzzMethod::kWeightedAverage: return "wavg";
  }
  return "centroid";
}

DefuzzMethod defuzz_method_from_string(std::string_view name) {
  if (name == "centroid") return DefuzzMethod::kCentroid;
  if (name == "bisector") return DefuzzMethod::kBisector;
  if (name == "mom") return DefuzzMethod::kMeanOfMaximum;
  if (name == "som") return DefuzzMethod::kSmallestOfMaximum;
  if (name == "lom") return DefuzzMethod::kLargestOfMaximum;
  if (name == "wavg") return DefuzzMethod::kWeightedAverage;
  throw ConfigError("unknown defuzzification method '" + std::string(name) +
                    "' (expected centroid|bisector|mom|som|lom|wavg)");
}

Defuzzifier::Defuzzifier(DefuzzMethod method, int resolution, SNorm aggregation)
    : method_(method), resolution_(resolution), aggregation_(aggregation) {
  if (resolution_ < 8)
    throw ConfigError("defuzzifier: resolution must be >= 8");
}

void Defuzzifier::prime(const LinguisticVariable& output) {
  if (method_ == DefuzzMethod::kWeightedAverage) {
    // Weighted average reads only term core centres — no grid to precompute.
    grid_.reset();
    return;
  }
  auto grid = std::make_shared<Grid>();
  grid->variable = &output;
  grid->resolution = resolution_;
  grid->analytic_ok = ordered_adjacent_partition(output);
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  const std::size_t n = static_cast<std::size_t>(resolution_);
  const std::size_t terms = output.term_count();
  grid->ys.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    grid->ys[i] = lo + static_cast<double>(i) * dy;
  grid->term_grades.resize(terms * n);
  for (std::size_t k = 0; k < terms; ++k) {
    const MembershipFunction& mf = output.term(k).mf;
    double* row = grid->term_grades.data() + k * n;
    for (std::size_t i = 0; i < n; ++i) row[i] = mf.grade(grid->ys[i]);
  }
  grid_ = std::move(grid);
}

bool Defuzzifier::primed_for(const LinguisticVariable& output) const noexcept {
  // The shape check guards the address key: if a new variable reuses a
  // destroyed variable's address with a different term count, the stale
  // grid must not match.
  return grid_ != nullptr && grid_->variable == &output &&
         grid_->resolution == resolution_ &&
         grid_->term_grades.size() == output.term_count() * grid_->ys.size();
}

double Defuzzifier::defuzzify(const OutputFuzzySet& set,
                              const LinguisticVariable& output) const {
  static thread_local std::vector<double> mu_scratch;
  return defuzzify(set.activations, set.implication, output, mu_scratch);
}

double Defuzzifier::defuzzify(std::span<const double> activations,
                              Implication implication,
                              const LinguisticVariable& output,
                              std::vector<double>& mu_scratch) const {
  FACSP_EXPECTS(activations.size() == output.term_count());
  bool empty = true;
  for (double a : activations) {
    if (a > 0.0) {
      empty = false;
      break;
    }
  }
  if (empty) return 0.5 * (output.universe_lo() + output.universe_hi());

  if (method_ == DefuzzMethod::kWeightedAverage)
    return weighted_average(activations, output);
  const bool primed = primed_for(output);
  if (analytic_ && analytic_supported(method_, aggregation_, implication) &&
      (primed ? grid_->analytic_ok : ordered_adjacent_partition(output)))
    return centroid_analytic(activations, implication, output);
  if (primed)
    return defuzzify_grid(*grid_, activations, implication, output,
                          mu_scratch);
  switch (method_) {
    case DefuzzMethod::kCentroid:
      return centroid(activations, implication, output);
    case DefuzzMethod::kBisector:
      return bisector(activations, implication, output, mu_scratch);
    default:
      return of_maximum(activations, implication, output);
  }
}

double Defuzzifier::aggregate_at(std::span<const double> activations,
                                 Implication impl,
                                 const LinguisticVariable& output,
                                 double y) const {
  double acc = 0.0;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    if (activations[k] <= 0.0) continue;
    const double g =
        apply_implication(impl, activations[k], output.term(k).mf.grade(y));
    acc = apply_snorm(aggregation_, acc, g);
  }
  return acc;
}

double Defuzzifier::defuzzify_grid(const Grid& grid,
                                   std::span<const double> activations,
                                   Implication impl,
                                   const LinguisticVariable& output,
                                   std::vector<double>& mu_scratch) const {
  const std::size_t n = grid.ys.size();
  const double* const ys = grid.ys.data();
  // Aggregate the clipped/scaled term columns into the sample buffer.  Term
  // order matches the naive path, so the float accumulation is identical.
  mu_scratch.assign(n, 0.0);
  double* const mu = mu_scratch.data();
  for (std::size_t k = 0; k < activations.size(); ++k) {
    const double a = activations[k];
    if (a <= 0.0) continue;
    const double* row = grid.term_grades.data() + k * n;
    for (std::size_t i = 0; i < n; ++i)
      mu[i] = apply_snorm(aggregation_, mu[i], apply_implication(impl, a, row[i]));
  }

  const double mid = 0.5 * (output.universe_lo() + output.universe_hi());
  switch (method_) {
    case DefuzzMethod::kCentroid:
    case DefuzzMethod::kBisector: {
      // One shared accumulation pass: trapezoid-weighted moments for the
      // centroid, the unweighted mass for the bisector.
      double num = 0.0, den = 0.0, total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double w = (i == 0 || i == n - 1) ? 0.5 : 1.0;
        const double m = mu[i] * w;
        num += m * ys[i];
        den += m;
        total += mu[i];
      }
      if (method_ == DefuzzMethod::kCentroid)
        return den <= 0.0 ? mid : num / den;
      if (total <= 0.0) return mid;
      double acc = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        acc += mu[i];
        if (acc >= 0.5 * total) return ys[i];
      }
      return output.universe_hi();
    }
    default: {
      double max_mu = 0.0;
      for (std::size_t i = 0; i < n; ++i) max_mu = std::max(max_mu, mu[i]);
      if (max_mu <= 0.0) return mid;
      const double tol = 1e-9;
      double first = output.universe_hi(), last = output.universe_lo();
      double sum = 0.0;
      std::size_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (mu[i] >= max_mu - tol) {
          first = std::min(first, ys[i]);
          last = std::max(last, ys[i]);
          sum += ys[i];
          ++count;
        }
      }
      switch (method_) {
        case DefuzzMethod::kSmallestOfMaximum: return first;
        case DefuzzMethod::kLargestOfMaximum: return last;
        default: return sum / static_cast<double>(count);
      }
    }
  }
}

bool Defuzzifier::analytic_supported(DefuzzMethod method, SNorm aggregation,
                                     Implication implication) noexcept {
  return method == DefuzzMethod::kCentroid &&
         aggregation == SNorm::kMaximum &&
         (implication == Implication::kMinimum ||
          implication == Implication::kProduct);
}

bool Defuzzifier::analytic_applicable(const LinguisticVariable& output,
                                      Implication implication) const noexcept {
  return analytic_ && analytic_supported(method_, aggregation_, implication) &&
         (primed_for(output) ? grid_->analytic_ok
                             : ordered_adjacent_partition(output));
}

double Defuzzifier::centroid_analytic(std::span<const double> activations,
                                      Implication impl,
                                      const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  double area = 0.0, moment = 0.0;
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::size_t prev = kNone;      // last integrated term index
  double prev_alpha = 0.0;       // its (clamped) activation
  for (std::size_t k = 0; k < activations.size(); ++k) {
    double alpha = activations[k];
    if (alpha <= 0.0) continue;
    const MembershipFunction& mf = output.term(k).mf;
    if (mf.is_singleton()) continue;  // zero measure under any integral
    // Clip implication saturates at the term's height 1, so alpha > 1 (only
    // reachable through the raw API) behaves exactly like alpha == 1.
    if (impl == Implication::kMinimum && alpha > 1.0) alpha = 1.0;
    AffineMin one;
    implicated_term_lines(mf, alpha, impl, one);
    integrate_concave_min(one, std::max(mf.a(), lo), std::min(mf.d(), hi),
                          1.0, area, moment);
    if (prev != kNone && k == prev + 1) {
      // Adjacent overlap: max(f, g) = f + g - min(f, g), and the partition
      // property guarantees no third term is positive there.
      const MembershipFunction& pm = output.term(prev).mf;
      AffineMin pair;
      implicated_term_lines(pm, prev_alpha, impl, pair);
      implicated_term_lines(mf, alpha, impl, pair);
      integrate_concave_min(pair, std::max(mf.a(), lo), std::min(pm.d(), hi),
                            -1.0, area, moment);
    }
    prev = k;
    prev_alpha = alpha;
  }
  if (area <= 0.0) return 0.5 * (lo + hi);
  return moment / area;
}

double Defuzzifier::centroid(std::span<const double> activations,
                             Implication impl,
                             const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  double num = 0.0, den = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    const double y = lo + i * dy;
    // Trapezoidal quadrature: halve the end samples.
    const double w = (i == 0 || i == resolution_ - 1) ? 0.5 : 1.0;
    const double mu = aggregate_at(activations, impl, output, y) * w;
    num += mu * y;
    den += mu;
  }
  if (den <= 0.0) return 0.5 * (lo + hi);
  return num / den;
}

double Defuzzifier::bisector(std::span<const double> activations,
                             Implication impl,
                             const LinguisticVariable& output,
                             std::vector<double>& mu_scratch) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  mu_scratch.resize(static_cast<std::size_t>(resolution_));
  double total = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    mu_scratch[i] = aggregate_at(activations, impl, output, lo + i * dy);
    total += mu_scratch[i];
  }
  if (total <= 0.0) return 0.5 * (lo + hi);
  double acc = 0.0;
  for (int i = 0; i < resolution_; ++i) {
    acc += mu_scratch[i];
    if (acc >= 0.5 * total) return lo + i * dy;
  }
  return hi;
}

double Defuzzifier::of_maximum(std::span<const double> activations,
                               Implication impl,
                               const LinguisticVariable& output) const {
  const double lo = output.universe_lo();
  const double hi = output.universe_hi();
  const double dy = (hi - lo) / (resolution_ - 1);
  double max_mu = 0.0;
  for (int i = 0; i < resolution_; ++i)
    max_mu = std::max(max_mu,
                      aggregate_at(activations, impl, output, lo + i * dy));
  if (max_mu <= 0.0) return 0.5 * (lo + hi);

  const double tol = 1e-9;
  double first = hi, last = lo, sum = 0.0;
  int count = 0;
  for (int i = 0; i < resolution_; ++i) {
    const double y = lo + i * dy;
    if (aggregate_at(activations, impl, output, y) >= max_mu - tol) {
      first = std::min(first, y);
      last = std::max(last, y);
      sum += y;
      ++count;
    }
  }
  switch (method_) {
    case DefuzzMethod::kSmallestOfMaximum: return first;
    case DefuzzMethod::kLargestOfMaximum: return last;
    default: return sum / count;
  }
}

double Defuzzifier::weighted_average(std::span<const double> activations,
                                     const LinguisticVariable& output) const {
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    const double a = activations[k];
    if (a <= 0.0) continue;
    num += a * output.term(k).mf.core_center();
    den += a;
  }
  if (den <= 0.0)
    return 0.5 * (output.universe_lo() + output.universe_hi());
  return num / den;
}

ResolutionTuning tune_centroid_resolution(const LinguisticVariable& output,
                                          Implication implication,
                                          SNorm aggregation,
                                          double abs_error_bound,
                                          int min_resolution,
                                          int max_resolution) {
  if (!Defuzzifier::analytic_supported(DefuzzMethod::kCentroid, aggregation,
                                       implication) ||
      !ordered_adjacent_partition(output))
    throw ConfigError(
        "tune_centroid_resolution: the analytic centroid is unavailable for "
        "this (implication, aggregation, term layout); there is no exact "
        "reference to tune against");
  if (abs_error_bound <= 0.0)
    throw ConfigError("tune_centroid_resolution: abs_error_bound must be > 0");
  if (min_resolution < 8) min_resolution = 8;
  if (max_resolution < min_resolution) max_resolution = min_resolution;

  // Deterministic probe set: every term alone at a few heights, every
  // adjacent pair, and pseudo-random mixtures from a fixed LCG.
  const std::size_t terms = output.term_count();
  std::vector<std::vector<double>> probes;
  for (std::size_t k = 0; k < terms; ++k) {
    for (const double h : {1.0, 0.6, 0.25}) {
      std::vector<double> acts(terms, 0.0);
      acts[k] = h;
      probes.push_back(std::move(acts));
    }
    if (k + 1 < terms) {
      std::vector<double> acts(terms, 0.0);
      acts[k] = 0.8;
      acts[k + 1] = 0.35;
      probes.push_back(std::move(acts));
    }
  }
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) * 0x1p-53;
  };
  for (int p = 0; p < 32; ++p) {
    std::vector<double> acts(terms, 0.0);
    for (std::size_t k = 0; k < terms; ++k) {
      const double u = next_unit();
      acts[k] = u < 0.5 ? 0.0 : 2.0 * (u - 0.5);  // ~half the terms silent
    }
    probes.push_back(std::move(acts));
  }

  Defuzzifier exact(DefuzzMethod::kCentroid, min_resolution, aggregation);
  std::vector<double> reference(probes.size());
  std::vector<double> mu;
  for (std::size_t i = 0; i < probes.size(); ++i)
    reference[i] = exact.defuzzify(probes[i], implication, output, mu);

  for (int res = min_resolution;; res = std::min(res * 2, max_resolution)) {
    Defuzzifier grid(DefuzzMethod::kCentroid, res, aggregation);
    grid.set_analytic_centroid(false);
    grid.prime(output);
    double err = 0.0;
    for (std::size_t i = 0; i < probes.size(); ++i)
      err = std::max(err, std::abs(grid.defuzzify(probes[i], implication,
                                                  output, mu) -
                                   reference[i]));
    if (err <= abs_error_bound) return {res, err, true};
    if (res >= max_resolution) return {res, err, false};
  }
}

}  // namespace facsp::fuzzy
