// Linguistic variables: a named universe of discourse plus an ordered set of
// named linguistic terms, each with a membership function.
//
// Example (paper Sec. 3.1):  T(Sp) = {Slow, Middle, Fast} over [0, 120] km/h.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fuzzy/membership.h"

namespace facsp::fuzzy {

/// One named fuzzy set of a linguistic variable (e.g. "Slow" for speed).
struct LinguisticTerm {
  std::string name;        ///< unique within its variable, e.g. "Sl"
  MembershipFunction mf;   ///< membership function over the variable universe
};

/// A named linguistic variable with a bounded universe of discourse and an
/// ordered list of terms.  Immutable after construction; validates that term
/// names are unique and non-empty and that the universe is a proper interval.
class LinguisticVariable {
 public:
  /// Throws facsp::ConfigError on: empty name, lo >= hi, no terms, duplicate
  /// or empty term names.
  LinguisticVariable(std::string name, double universe_lo, double universe_hi,
                     std::vector<LinguisticTerm> terms);

  const std::string& name() const noexcept { return name_; }
  double universe_lo() const noexcept { return lo_; }
  double universe_hi() const noexcept { return hi_; }

  std::size_t term_count() const noexcept { return terms_.size(); }
  const LinguisticTerm& term(std::size_t i) const;
  const std::vector<LinguisticTerm>& terms() const noexcept { return terms_; }

  /// Index of the term with the given name; throws ConfigError if absent.
  std::size_t term_index(std::string_view term_name) const;

  /// True if a term with that name exists.
  bool has_term(std::string_view term_name) const noexcept;

  /// Membership grades of every term at x (the "fuzzification" of x).
  /// x is clamped to the universe first — simulation inputs occasionally sit
  /// an ULP outside due to floating point, and the paper's universes are hard
  /// physical bounds anyway.
  std::vector<double> fuzzify(double x) const;

  /// As fuzzify(), but writes the grades into caller-provided storage of
  /// exactly term_count() entries — the allocation-free form used by the
  /// inference fast path.
  void fuzzify_into(double x, std::span<double> out) const;

  /// Grade of a single term at x (x clamped to the universe).
  double grade(std::size_t term, double x) const;

  /// Index of the term with the highest grade at x (ties -> lowest index).
  std::size_t best_term(double x) const;

  /// True when every x in the universe has at least one term with grade >=
  /// min_grade (sampled check, `samples` points).  Useful as a design-time
  /// sanity check that rules can always fire.
  bool covers_universe(double min_grade = 1e-9, int samples = 2048) const;

 private:
  std::string name_;
  double lo_, hi_;
  std::vector<LinguisticTerm> terms_;
};

}  // namespace facsp::fuzzy
