#include "fuzzy/inference.h"

#include <algorithm>
#include <cmath>

#include "common/expects.h"

namespace facsp::fuzzy {

double OutputFuzzySet::grade(const LinguisticVariable& output, double y,
                             SNorm s_norm) const {
  FACSP_EXPECTS(activations.size() == output.term_count());
  double acc = 0.0;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    if (activations[k] <= 0.0) continue;
    const double g =
        apply_implication(implication, activations[k], output.term(k).mf.grade(y));
    acc = apply_snorm(s_norm, acc, g);
  }
  return acc;
}

bool OutputFuzzySet::empty() const noexcept {
  return std::all_of(activations.begin(), activations.end(),
                     [](double a) { return a <= 0.0; });
}

double OutputFuzzySet::height() const noexcept {
  double h = 0.0;
  for (double a : activations) h = std::max(h, a);
  return h;
}

InferenceEngine::InferenceEngine(const std::vector<LinguisticVariable>& inputs,
                                 const LinguisticVariable& output,
                                 const RuleBase& rules,
                                 InferenceOptions options)
    : inputs_(inputs), output_(output), rules_(rules), options_(options) {
  FACSP_EXPECTS(!inputs_.empty());
  FACSP_EXPECTS(rules_.input_count() == inputs_.size());
  FACSP_EXPECTS(rules_.output_term_count() == output_.term_count());
  grade_offsets_.reserve(inputs_.size());
  for (const auto& in : inputs_) {
    grade_offsets_.push_back(total_grades_);
    total_grades_ += in.term_count();
  }
}

double InferenceEngine::combine_and(double a, double b) const noexcept {
  return options_.t_norm == TNorm::kMinimum ? std::min(a, b) : a * b;
}

double InferenceEngine::combine_or(double a, double b) const noexcept {
  return apply_snorm(options_.s_norm, a, b);
}

void InferenceEngine::run(std::span<const double> crisp_inputs,
                          InferenceScratch& scratch,
                          std::vector<FiredRule>* fired) const {
  FACSP_EXPECTS_MSG(crisp_inputs.size() == inputs_.size(),
                    "expected " << inputs_.size() << " inputs, got "
                                << crisp_inputs.size());
  // Fuzzify every input once into the flat arena; rules then look grades up
  // by offset.  resize()/assign() reuse capacity, so a warm scratch never
  // touches the heap.
  scratch.grades.resize(total_grades_);
  double* const grades = scratch.grades.data();
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    inputs_[i].fuzzify_into(
        crisp_inputs[i],
        std::span<double>(grades + grade_offsets_[i],
                          inputs_[i].term_count()));

  scratch.activations.assign(output_.term_count(), 0.0);
  if (fired != nullptr) fired->clear();

  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const FuzzyRule& rule = rules_.rule(r);
    double strength = 1.0;
    for (std::size_t i = 0; i < rule.antecedents.size() && strength > 0.0;
         ++i) {
      const std::size_t a = rule.antecedents[i];
      if (a == FuzzyRule::kAny) continue;
      strength = combine_and(strength, grades[grade_offsets_[i] + a]);
    }
    strength *= rule.weight;
    if (strength <= 0.0) continue;
    if (fired != nullptr) fired->push_back({r, strength});
    scratch.activations[rule.consequent] =
        combine_or(scratch.activations[rule.consequent], strength);
  }

  if (fired != nullptr)
    std::sort(fired->begin(), fired->end(),
              [](const FiredRule& a, const FiredRule& b) {
                return a.strength > b.strength;
              });
}

void InferenceEngine::infer_into(std::span<const double> crisp_inputs,
                                 InferenceScratch& scratch) const {
  run(crisp_inputs, scratch, nullptr);
}

void InferenceEngine::infer_traced_into(std::span<const double> crisp_inputs,
                                        InferenceScratch& scratch) const {
  run(crisp_inputs, scratch, &scratch.fired);
}

OutputFuzzySet InferenceEngine::infer(
    std::span<const double> crisp_inputs) const {
  static thread_local InferenceScratch scratch;
  run(crisp_inputs, scratch, nullptr);
  OutputFuzzySet out;
  out.implication = options_.implication;
  out.activations.assign(scratch.activations.begin(),
                         scratch.activations.end());
  return out;
}

OutputFuzzySet InferenceEngine::infer_traced(
    std::span<const double> crisp_inputs, std::vector<FiredRule>& fired) const {
  static thread_local InferenceScratch scratch;
  run(crisp_inputs, scratch, &fired);
  OutputFuzzySet out;
  out.implication = options_.implication;
  out.activations.assign(scratch.activations.begin(),
                         scratch.activations.end());
  return out;
}

}  // namespace facsp::fuzzy
