#include "fuzzy/inference.h"

#include <algorithm>
#include <cmath>

#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::fuzzy {

namespace detail {
// Defined in inference_batch.cc: true when hand-written SIMD lane kernels
// are compiled in (FACSP_SIMD) and the running CPU supports them.
bool lane_simd_available() noexcept;
}  // namespace detail

double OutputFuzzySet::grade(const LinguisticVariable& output, double y,
                             SNorm s_norm) const {
  FACSP_EXPECTS(activations.size() == output.term_count());
  double acc = 0.0;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    if (activations[k] <= 0.0) continue;
    const double g =
        apply_implication(implication, activations[k], output.term(k).mf.grade(y));
    acc = apply_snorm(s_norm, acc, g);
  }
  return acc;
}

bool OutputFuzzySet::empty() const noexcept {
  return std::all_of(activations.begin(), activations.end(),
                     [](double a) { return a <= 0.0; });
}

double OutputFuzzySet::height() const noexcept {
  double h = 0.0;
  for (double a : activations) h = std::max(h, a);
  return h;
}

InferenceEngine::InferenceEngine(const std::vector<LinguisticVariable>& inputs,
                                 const LinguisticVariable& output,
                                 const RuleBase& rules,
                                 InferenceOptions options)
    : inputs_(inputs), output_(output), rules_(rules), options_(options) {
  FACSP_EXPECTS(!inputs_.empty());
  FACSP_EXPECTS(rules_.input_count() == inputs_.size());
  FACSP_EXPECTS(rules_.output_term_count() == output_.term_count());
  grade_offsets_.reserve(inputs_.size());
  for (const auto& in : inputs_) {
    grade_offsets_.push_back(total_grades_);
    total_grades_ += in.term_count();
  }

  // Flatten the rule base: the hot loops then walk two contiguous arrays
  // instead of chasing one std::vector per rule.  Wildcard antecedents are
  // dropped here, preserving the remaining antecedents' relative order, so
  // the fold over grades is the exact sequence run() always performed.
  flat_rules_.reserve(rules_.size());
  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const FuzzyRule& rule = rules_.rule(r);
    FlatRule fr;
    fr.first = static_cast<std::uint32_t>(rule_slots_.size());
    for (std::size_t i = 0; i < rule.antecedents.size(); ++i) {
      const std::size_t a = rule.antecedents[i];
      if (a == FuzzyRule::kAny) continue;
      rule_slots_.push_back(static_cast<std::uint32_t>(grade_offsets_[i] + a));
    }
    fr.count = static_cast<std::uint32_t>(rule_slots_.size()) - fr.first;
    fr.consequent = static_cast<std::uint32_t>(rule.consequent);
    fr.weight = rule.weight;
    flat_rules_.push_back(fr);
  }

  // Sparse-fire fast path: with a wildcard-free, duplicate-free rule table
  // and max aggregation, run() can enumerate only the antecedent-term
  // combinations whose grades are all non-zero and look each rule up in a
  // dense tuple-indexed table.  Adjacent-overlap partitions (every paper
  // variable) activate at most two terms per input, so e.g. FRB1 fires at
  // most 8 of its 63 rules per evaluation.  This is bit-identical to the
  // linear scan: max aggregation is exactly order-independent, and a rule
  // with any zero antecedent grade has exactly zero strength under either
  // t-norm, so skipping it cannot change an activation.
  std::size_t tuple_count = 1;
  dense_ok_ = options_.s_norm == SNorm::kMaximum &&
              inputs_.size() <= kMaxDenseInputs;
  for (const auto& in : inputs_) {
    dense_ok_ = dense_ok_ && in.term_count() <= kMaxDenseTerms;
    tuple_count *= in.term_count();
  }
  if (dense_ok_ && tuple_count <= 4096) {
    dense_rules_.assign(tuple_count, DenseRule{});
    for (std::size_t r = 0; r < rules_.size() && dense_ok_; ++r) {
      const FuzzyRule& rule = rules_.rule(r);
      std::size_t idx = 0;
      for (std::size_t i = 0; i < rule.antecedents.size(); ++i) {
        if (rule.antecedents[i] == FuzzyRule::kAny) {
          dense_ok_ = false;
          break;
        }
        idx = idx * inputs_[i].term_count() + rule.antecedents[i];
      }
      if (!dense_ok_) break;
      if (dense_rules_[idx].consequent >= 0) {
        dense_ok_ = false;  // duplicate tuple: scan preserves both firings
        break;
      }
      dense_rules_[idx].consequent = static_cast<std::int32_t>(rule.consequent);
      dense_rules_[idx].weight = rule.weight;
    }
  } else {
    dense_ok_ = false;
  }
  if (!dense_ok_) dense_rules_.clear();

  // Snapshot per-term geometry for the lane fuzzifier.  ba/dc are the exact
  // doubles grade() divides by, so the lane kernels perform bit-identical
  // divisions; degenerate shapes (singletons, zero-width edges) are flagged
  // for the scalar per-lane fallback.
  lane_terms_.reserve(total_grades_);
  for (const LinguisticVariable& v : inputs_) {
    for (std::size_t t = 0; t < v.term_count(); ++t) {
      const MembershipFunction& mf = v.term(t).mf;
      LaneTerm lt;
      lt.mf = &mf;
      lt.lo = v.universe_lo();
      lt.hi = v.universe_hi();
      lt.a = mf.a();
      lt.d = mf.d();
      lt.left_open = mf.b() == -kInf;
      lt.right_open = mf.c() == kInf;
      lt.ba = lt.left_open ? 1.0 : mf.b() - mf.a();
      lt.dc = lt.right_open ? 1.0 : mf.d() - mf.c();
      const bool zero_rise = std::isfinite(mf.b()) && !(mf.a() < mf.b());
      const bool zero_fall = std::isfinite(mf.c()) && !(mf.c() < mf.d());
      lt.fast = !mf.is_singleton() && !zero_rise && !zero_fall;
      lane_terms_.push_back(lt);
    }
  }

  simd_active_ = options_.simd && detail::lane_simd_available();
}

double InferenceEngine::combine_and(double a, double b) const noexcept {
  return options_.t_norm == TNorm::kMinimum ? std::min(a, b) : a * b;
}

double InferenceEngine::combine_or(double a, double b) const noexcept {
  return apply_snorm(options_.s_norm, a, b);
}

void InferenceEngine::run(std::span<const double> crisp_inputs,
                          InferenceScratch& scratch,
                          std::vector<FiredRule>* fired) const {
  FACSP_EXPECTS_MSG(crisp_inputs.size() == inputs_.size(),
                    "expected " << inputs_.size() << " inputs, got "
                                << crisp_inputs.size());
  // Fuzzify every input once into the flat arena; rules then look grades up
  // by offset.  resize()/assign() reuse capacity, so a warm scratch never
  // touches the heap.
  scratch.grades.resize(total_grades_);
  double* const grades = scratch.grades.data();
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    inputs_[i].fuzzify_into(
        crisp_inputs[i],
        std::span<double>(grades + grade_offsets_[i],
                          inputs_[i].term_count()));

  scratch.activations.assign(output_.term_count(), 0.0);
  if (fired != nullptr) fired->clear();

  // Sparse-fire fast path (see ctor): enumerate only the cross product of
  // non-zero-grade terms per input and index the dense rule table.  The
  // traced path keeps the scan so fired-rule order stays stable.
  if (dense_ok_ && fired == nullptr) {
    std::uint32_t nz[kMaxDenseInputs][kMaxDenseTerms];
    std::uint32_t nz_count[kMaxDenseInputs];
    const std::size_t n = inputs_.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double* const g = grades + grade_offsets_[i];
      std::uint32_t c = 0;
      for (std::size_t t = 0; t < inputs_[i].term_count(); ++t)
        if (g[t] > 0.0) nz[i][c++] = static_cast<std::uint32_t>(t);
      if (c == 0) return;  // an all-zero input: no wildcard-free rule fires
      nz_count[i] = c;
    }
    std::uint32_t pos[kMaxDenseInputs] = {};
    for (;;) {
      std::size_t idx = 0;
      double strength = 1.0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t t = nz[i][pos[i]];
        idx = idx * inputs_[i].term_count() + t;
        strength = combine_and(strength, grades[grade_offsets_[i] + t]);
      }
      const DenseRule& dr = dense_rules_[idx];
      if (dr.consequent >= 0) {
        strength *= dr.weight;
        if (strength > 0.0) {
          double& acc =
              scratch.activations[static_cast<std::size_t>(dr.consequent)];
          acc = combine_or(acc, strength);
        }
      }
      std::size_t i = n - 1;
      while (++pos[i] == nz_count[i]) {
        pos[i] = 0;
        if (i == 0) return;
        --i;
      }
    }
  }

  const std::uint32_t* const slots = rule_slots_.data();
  for (std::size_t r = 0; r < flat_rules_.size(); ++r) {
    const FlatRule& rule = flat_rules_[r];
    double strength = 1.0;
    for (std::uint32_t i = 0; i < rule.count && strength > 0.0; ++i)
      strength = combine_and(strength, grades[slots[rule.first + i]]);
    strength *= rule.weight;
    if (strength <= 0.0) continue;
    if (fired != nullptr) fired->push_back({r, strength});
    scratch.activations[rule.consequent] =
        combine_or(scratch.activations[rule.consequent], strength);
  }

  if (fired != nullptr)
    std::sort(fired->begin(), fired->end(),
              [](const FiredRule& a, const FiredRule& b) {
                return a.strength > b.strength;
              });
}

void InferenceEngine::infer_into(std::span<const double> crisp_inputs,
                                 InferenceScratch& scratch) const {
  run(crisp_inputs, scratch, nullptr);
}

void InferenceEngine::infer_traced_into(std::span<const double> crisp_inputs,
                                        InferenceScratch& scratch) const {
  run(crisp_inputs, scratch, &scratch.fired);
}

OutputFuzzySet InferenceEngine::infer(
    std::span<const double> crisp_inputs) const {
  static thread_local InferenceScratch scratch;
  run(crisp_inputs, scratch, nullptr);
  OutputFuzzySet out;
  out.implication = options_.implication;
  out.activations.assign(scratch.activations.begin(),
                         scratch.activations.end());
  return out;
}

OutputFuzzySet InferenceEngine::infer_traced(
    std::span<const double> crisp_inputs, std::vector<FiredRule>& fired) const {
  static thread_local InferenceScratch scratch;
  run(crisp_inputs, scratch, &fired);
  OutputFuzzySet out;
  out.implication = options_.implication;
  out.activations.assign(scratch.activations.begin(),
                         scratch.activations.end());
  return out;
}

}  // namespace facsp::fuzzy
