#include "fuzzy/inference.h"

#include <algorithm>
#include <cmath>

#include "common/expects.h"

namespace facsp::fuzzy {

namespace {

double apply_snorm(SNorm s, double a, double b) noexcept {
  switch (s) {
    case SNorm::kMaximum:
      return std::max(a, b);
    case SNorm::kProbabilisticSum:
      return a + b - a * b;
    case SNorm::kBoundedSum:
      return std::min(1.0, a + b);
  }
  return std::max(a, b);  // unreachable
}

double apply_implication(Implication impl, double activation,
                         double term_grade) noexcept {
  switch (impl) {
    case Implication::kMinimum:
      return std::min(activation, term_grade);
    case Implication::kProduct:
      return activation * term_grade;
  }
  return std::min(activation, term_grade);  // unreachable
}

}  // namespace

double OutputFuzzySet::grade(const LinguisticVariable& output, double y,
                             SNorm s_norm) const {
  FACSP_EXPECTS(activations.size() == output.term_count());
  double acc = 0.0;
  for (std::size_t k = 0; k < activations.size(); ++k) {
    if (activations[k] <= 0.0) continue;
    const double g =
        apply_implication(implication, activations[k], output.term(k).mf.grade(y));
    acc = apply_snorm(s_norm, acc, g);
  }
  return acc;
}

bool OutputFuzzySet::empty() const noexcept {
  return std::all_of(activations.begin(), activations.end(),
                     [](double a) { return a <= 0.0; });
}

double OutputFuzzySet::height() const noexcept {
  double h = 0.0;
  for (double a : activations) h = std::max(h, a);
  return h;
}

InferenceEngine::InferenceEngine(const std::vector<LinguisticVariable>& inputs,
                                 const LinguisticVariable& output,
                                 const RuleBase& rules,
                                 InferenceOptions options)
    : inputs_(inputs), output_(output), rules_(rules), options_(options) {
  FACSP_EXPECTS(!inputs_.empty());
  FACSP_EXPECTS(rules_.input_count() == inputs_.size());
  FACSP_EXPECTS(rules_.output_term_count() == output_.term_count());
}

double InferenceEngine::combine_and(double a, double b) const noexcept {
  return options_.t_norm == TNorm::kMinimum ? std::min(a, b) : a * b;
}

double InferenceEngine::combine_or(double a, double b) const noexcept {
  return apply_snorm(options_.s_norm, a, b);
}

OutputFuzzySet InferenceEngine::infer(
    std::span<const double> crisp_inputs) const {
  std::vector<FiredRule> scratch;
  return infer_traced(crisp_inputs, scratch);
}

OutputFuzzySet InferenceEngine::infer_traced(
    std::span<const double> crisp_inputs, std::vector<FiredRule>& fired) const {
  FACSP_EXPECTS_MSG(crisp_inputs.size() == inputs_.size(),
                    "expected " << inputs_.size() << " inputs, got "
                                << crisp_inputs.size());
  fired.clear();

  // Fuzzify every input once; rules then look grades up by index.
  std::vector<std::vector<double>> grades(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    grades[i] = inputs_[i].fuzzify(crisp_inputs[i]);

  OutputFuzzySet out;
  out.implication = options_.implication;
  out.activations.assign(output_.term_count(), 0.0);

  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const FuzzyRule& rule = rules_.rule(r);
    double strength = 1.0;
    for (std::size_t i = 0; i < rule.antecedents.size() && strength > 0.0;
         ++i) {
      const std::size_t a = rule.antecedents[i];
      if (a == FuzzyRule::kAny) continue;
      strength = combine_and(strength, grades[i][a]);
    }
    strength *= rule.weight;
    if (strength <= 0.0) continue;
    fired.push_back({r, strength});
    out.activations[rule.consequent] =
        combine_or(out.activations[rule.consequent], strength);
  }

  std::sort(fired.begin(), fired.end(),
            [](const FiredRule& a, const FiredRule& b) {
              return a.strength > b.strength;
            });
  return out;
}

}  // namespace facsp::fuzzy
