#include "fuzzy/variable.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.h"
#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::fuzzy {

LinguisticVariable::LinguisticVariable(std::string name, double universe_lo,
                                       double universe_hi,
                                       std::vector<LinguisticTerm> terms)
    : name_(std::move(name)),
      lo_(universe_lo),
      hi_(universe_hi),
      terms_(std::move(terms)) {
  if (name_.empty())
    throw ConfigError("linguistic variable: name must not be empty");
  if (!std::isfinite(lo_) || !std::isfinite(hi_) || lo_ >= hi_)
    throw ConfigError("linguistic variable '" + name_ +
                      "': universe must be a finite interval with lo < hi");
  if (terms_.empty())
    throw ConfigError("linguistic variable '" + name_ +
                      "': must have at least one term");
  std::unordered_set<std::string_view> seen;
  for (const auto& t : terms_) {
    if (t.name.empty())
      throw ConfigError("linguistic variable '" + name_ +
                        "': term names must not be empty");
    if (!seen.insert(t.name).second)
      throw ConfigError("linguistic variable '" + name_ +
                        "': duplicate term name '" + t.name + "'");
  }
}

const LinguisticTerm& LinguisticVariable::term(std::size_t i) const {
  FACSP_EXPECTS_MSG(i < terms_.size(), "variable '" << name_ << "', term index "
                                                    << i << " out of range");
  return terms_[i];
}

std::size_t LinguisticVariable::term_index(std::string_view term_name) const {
  for (std::size_t i = 0; i < terms_.size(); ++i)
    if (terms_[i].name == term_name) return i;
  throw ConfigError("linguistic variable '" + name_ + "': no term named '" +
                    std::string(term_name) + "'");
}

bool LinguisticVariable::has_term(std::string_view term_name) const noexcept {
  return std::any_of(terms_.begin(), terms_.end(),
                     [&](const LinguisticTerm& t) { return t.name == term_name; });
}

std::vector<double> LinguisticVariable::fuzzify(double x) const {
  std::vector<double> grades(terms_.size());
  fuzzify_into(x, grades);
  return grades;
}

void LinguisticVariable::fuzzify_into(double x, std::span<double> out) const {
  FACSP_EXPECTS(out.size() == terms_.size());
  const double cx = clamp(x, lo_, hi_);
  for (std::size_t i = 0; i < terms_.size(); ++i)
    out[i] = terms_[i].mf.grade(cx);
}

double LinguisticVariable::grade(std::size_t term, double x) const {
  FACSP_EXPECTS(term < terms_.size());
  return terms_[term].mf.grade(clamp(x, lo_, hi_));
}

std::size_t LinguisticVariable::best_term(double x) const {
  const auto grades = fuzzify(x);
  return static_cast<std::size_t>(
      std::distance(grades.begin(),
                    std::max_element(grades.begin(), grades.end())));
}

bool LinguisticVariable::covers_universe(double min_grade, int samples) const {
  FACSP_EXPECTS(samples >= 2);
  for (int i = 0; i < samples; ++i) {
    const double x =
        lo_ + (hi_ - lo_) * static_cast<double>(i) / (samples - 1);
    double best = 0.0;
    for (const auto& t : terms_) best = std::max(best, t.mf.grade(x));
    if (best < min_grade) return false;
  }
  return true;
}

}  // namespace facsp::fuzzy
