#include "fuzzy/rule.h"

#include <sstream>

#include "common/expects.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

std::string to_string(const FuzzyRule& rule,
                      const std::vector<LinguisticVariable>& inputs,
                      const LinguisticVariable& output) {
  FACSP_EXPECTS(rule.antecedents.size() == inputs.size());
  std::ostringstream os;
  os << "IF ";
  bool first = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (rule.antecedents[i] == FuzzyRule::kAny) continue;
    if (!first) os << " AND ";
    os << inputs[i].name() << " is "
       << inputs[i].term(rule.antecedents[i]).name;
    first = false;
  }
  if (first) os << "TRUE";  // all-wildcard antecedent
  os << " THEN " << output.name() << " is "
     << output.term(rule.consequent).name;
  if (rule.weight != 1.0) os << " [" << rule.weight << "]";
  return os.str();
}

}  // namespace facsp::fuzzy
