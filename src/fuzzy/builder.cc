#include "fuzzy/builder.h"

#include "common/error.h"
#include "fuzzy/rule_parser.h"
#include "fuzzy/rulebase.h"

namespace facsp::fuzzy {

VariableBuilder::VariableBuilder(std::string name, double universe_lo,
                                 double universe_hi)
    : name_(std::move(name)), lo_(universe_lo), hi_(universe_hi) {}

VariableBuilder& VariableBuilder::triangular(std::string term, double center,
                                             double left_width,
                                             double right_width) {
  terms_.push_back({std::move(term), MembershipFunction::triangular(
                                         center, left_width, right_width)});
  return *this;
}

VariableBuilder& VariableBuilder::trapezoidal(std::string term,
                                              double plateau_lo,
                                              double plateau_hi,
                                              double left_width,
                                              double right_width) {
  terms_.push_back({std::move(term),
                    MembershipFunction::trapezoidal(plateau_lo, plateau_hi,
                                                    left_width, right_width)});
  return *this;
}

VariableBuilder& VariableBuilder::left_shoulder(std::string term,
                                                double plateau_hi,
                                                double right_width) {
  terms_.push_back({std::move(term), MembershipFunction::left_shoulder(
                                         plateau_hi, right_width)});
  return *this;
}

VariableBuilder& VariableBuilder::right_shoulder(std::string term,
                                                 double plateau_lo,
                                                 double left_width) {
  terms_.push_back({std::move(term), MembershipFunction::right_shoulder(
                                         plateau_lo, left_width)});
  return *this;
}

VariableBuilder& VariableBuilder::term(std::string term_name,
                                       MembershipFunction mf) {
  terms_.push_back({std::move(term_name), mf});
  return *this;
}

VariableBuilder& VariableBuilder::uniform_partition(const std::string& prefix,
                                                    int count) {
  if (count < 2)
    throw ConfigError("uniform_partition: need at least 2 terms");
  const double step = (hi_ - lo_) / (count - 1);
  for (int k = 0; k < count; ++k) {
    const std::string name = prefix + std::to_string(k + 1);
    const double center = lo_ + k * step;
    if (k == 0) {
      left_shoulder(name, center, step);
    } else if (k == count - 1) {
      right_shoulder(name, center, step);
    } else {
      triangular(name, center, step, step);
    }
  }
  return *this;
}

LinguisticVariable VariableBuilder::build() const {
  return LinguisticVariable(name_, lo_, hi_, terms_);
}

ControllerBuilder::ControllerBuilder(std::string name)
    : name_(std::move(name)) {}

ControllerBuilder& ControllerBuilder::input(LinguisticVariable v) {
  inputs_.push_back(std::move(v));
  return *this;
}

ControllerBuilder& ControllerBuilder::output(LinguisticVariable v) {
  if (!output_.empty())
    throw ConfigError("controller '" + name_ + "': output already set");
  output_.push_back(std::move(v));
  return *this;
}

ControllerBuilder& ControllerBuilder::rule(const std::string& text) {
  if (output_.empty())
    throw ConfigError("controller '" + name_ +
                      "': declare output before rules");
  rules_.push_back(parse_rule(text, inputs_, output_.front()));
  return *this;
}

ControllerBuilder& ControllerBuilder::rule(
    const std::vector<std::string>& antecedent_terms,
    const std::string& consequent_term, double weight) {
  if (output_.empty())
    throw ConfigError("controller '" + name_ +
                      "': declare output before rules");
  if (antecedent_terms.size() != inputs_.size())
    throw ConfigError("controller '" + name_ + "': rule arity mismatch");
  FuzzyRule r;
  r.weight = weight;
  r.antecedents.reserve(inputs_.size());
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    r.antecedents.push_back(antecedent_terms[i] == "*"
                                ? FuzzyRule::kAny
                                : inputs_[i].term_index(antecedent_terms[i]));
  }
  r.consequent = output_.front().term_index(consequent_term);
  rules_.push_back(std::move(r));
  return *this;
}

ControllerBuilder& ControllerBuilder::rule_table(
    const std::vector<std::string>& consequents) {
  pending_table_ = consequents;
  return *this;
}

ControllerBuilder& ControllerBuilder::inference(InferenceOptions options) {
  inference_ = options;
  return *this;
}

ControllerBuilder& ControllerBuilder::defuzzifier(Defuzzifier d) {
  defuzz_ = d;
  return *this;
}

std::unique_ptr<FuzzyController> ControllerBuilder::build() {
  if (output_.empty())
    throw ConfigError("controller '" + name_ + "': no output variable");
  if (!pending_table_.empty()) {
    RuleBase rb =
        RuleBase::from_table(inputs_, output_.front(), pending_table_);
    for (const auto& r : rb.rules()) rules_.push_back(r);
    pending_table_.clear();
  }
  if (rules_.empty())
    throw ConfigError("controller '" + name_ + "': no rules");
  return std::make_unique<FuzzyController>(name_, std::move(inputs_),
                                           std::move(output_.front()),
                                           std::move(rules_), inference_,
                                           defuzz_);
}

}  // namespace facsp::fuzzy
