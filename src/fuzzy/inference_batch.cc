// Structure-of-arrays batched inference: the lane kernels behind
// InferenceEngine::infer_batch_into().
//
// Layout: every per-decision quantity is lane-major — kLanes consecutive
// doubles per input / grade slot / output term, one per decision — so the
// innermost loops step across decisions, not terms.  The generic kernels are
// flat branch-free loops the compiler auto-vectorizes; with FACSP_SIMD the
// same algorithms are hand-written in AVX2 (runtime-dispatched, no global
// -mavx2) or NEON intrinsics.
//
// Bit-identity contract (load-bearing for the PR 2-5 determinism guarantees;
// asserted by tests/fuzzy/test_batch_inference.cc): per lane, every kernel
// performs the exact IEEE operation sequence of the scalar path:
//  * fuzzify: the same clamp ternaries and the same edge-ratio divisions as
//    MembershipFunction::grade(), as min/max selects; a NaN input is blended
//    to 0 by an ordered compare, matching grade()'s isnan guard.  Degenerate
//    shapes (singletons, zero-width edges) take a scalar per-lane fallback
//    through grade() itself.
//  * rules: the strength folds antecedent grades in antecedent order and
//    multiplies the weight last, exactly like the scalar loop.  The scalar
//    loop early-exits once the strength hits 0; evaluating on is
//    value-identical because min(0, g) == 0, 0 * g == 0 and every s-norm
//    satisfies snorm(acc, 0) == acc for acc in [0, 1].
//  * only min/max/add/sub/mul/div lane ops are used — never FMA — so the
//    intrinsic kernels round exactly like the scalar code.
#include <cmath>
#include <cstdint>
#include <span>

#include "common/expects.h"
#include "common/math_util.h"
#include "fuzzy/inference.h"

#if defined(FACSP_SIMD_ENABLED) && defined(__x86_64__)
#include <immintrin.h>
#elif defined(FACSP_SIMD_ENABLED) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace facsp::fuzzy {

namespace detail {

bool lane_simd_available() noexcept {
#if defined(FACSP_SIMD_ENABLED) && defined(__x86_64__)
  static const bool avx2 = __builtin_cpu_supports("avx2");
  return avx2;
#elif defined(FACSP_SIMD_ENABLED) && defined(__aarch64__)
  return true;  // NEON is baseline on AArch64
#else
  return false;
#endif
}

}  // namespace detail

void InferenceEngine::infer_batch_into(std::span<const double> crisp_inputs,
                                       std::size_t rows,
                                       InferenceScratch& scratch) const {
  constexpr std::size_t W = kLanes;
  FACSP_EXPECTS_MSG(rows >= 1 && rows <= W,
                    "infer_batch_into: rows must be in [1, " << W << "], got "
                                                             << rows);
  FACSP_EXPECTS_MSG(crisp_inputs.size() == rows * inputs_.size(),
                    "infer_batch_into: expected " << rows * inputs_.size()
                                                  << " values, got "
                                                  << crisp_inputs.size());
  const std::size_t ni = inputs_.size();
  scratch.lane_inputs.resize(ni * W);
  scratch.lane_grades.resize(total_grades_ * W);
  scratch.lane_activations.assign(output_.term_count() * W, 0.0);
  // Transpose the row-major block to lane-major; tail lanes replicate row 0
  // (computed but never read back, and always finite).
  double* const in = scratch.lane_inputs.data();
  for (std::size_t i = 0; i < ni; ++i)
    for (std::size_t l = 0; l < W; ++l)
      in[i * W + l] = crisp_inputs[(l < rows ? l : 0) * ni + i];
  if (simd_active_)
    infer_lanes_simd(scratch);
  else
    infer_lanes_generic(scratch);
}

void InferenceEngine::infer_lanes_generic(InferenceScratch& scratch) const {
  constexpr std::size_t W = kLanes;
  const double* const in = scratch.lane_inputs.data();
  double* const grades = scratch.lane_grades.data();
  double* const acts = scratch.lane_activations.data();

  // Fuzzify: one branchless kernel per (input, term), vectorizable lanes.
  std::size_t s = 0;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const double* const x = in + i * W;
    for (std::size_t t = 0; t < inputs_[i].term_count(); ++t, ++s) {
      const LaneTerm& g = lane_terms_[s];
      double* const out = grades + s * W;
      if (g.fast) {
        for (std::size_t l = 0; l < W; ++l) {
          double cx = x[l];
          cx = cx < g.lo ? g.lo : cx;
          cx = cx > g.hi ? g.hi : cx;
          const double rise = g.left_open ? 1.0 : (cx - g.a) / g.ba;
          const double fall = g.right_open ? 1.0 : (g.d - cx) / g.dc;
          double v = rise < fall ? rise : fall;
          v = v < 1.0 ? v : 1.0;
          v = v > 0.0 ? v : 0.0;
          out[l] = cx == cx ? v : 0.0;  // grade() maps NaN to 0
        }
      } else {
        for (std::size_t l = 0; l < W; ++l)
          out[l] = g.mf->grade(clamp(x[l], g.lo, g.hi));
      }
    }
  }

  // Rules: fold antecedent grades lane-wise, then aggregate per consequent.
  double st[W];
  const std::uint32_t* const slots = rule_slots_.data();
  for (const FlatRule& rule : flat_rules_) {
    for (std::size_t l = 0; l < W; ++l) st[l] = 1.0;
    if (options_.t_norm == TNorm::kMinimum) {
      for (std::uint32_t i = 0; i < rule.count; ++i) {
        const double* const gr = grades + slots[rule.first + i] * W;
        for (std::size_t l = 0; l < W; ++l)
          st[l] = gr[l] < st[l] ? gr[l] : st[l];
      }
    } else {
      for (std::uint32_t i = 0; i < rule.count; ++i) {
        const double* const gr = grades + slots[rule.first + i] * W;
        for (std::size_t l = 0; l < W; ++l) st[l] *= gr[l];
      }
    }
    for (std::size_t l = 0; l < W; ++l) st[l] *= rule.weight;
    double* const out = acts + rule.consequent * W;
    switch (options_.s_norm) {
      case SNorm::kMaximum:
        for (std::size_t l = 0; l < W; ++l)
          out[l] = out[l] > st[l] ? out[l] : st[l];
        break;
      case SNorm::kProbabilisticSum:
        for (std::size_t l = 0; l < W; ++l)
          out[l] = out[l] + st[l] - out[l] * st[l];
        break;
      case SNorm::kBoundedSum:
        for (std::size_t l = 0; l < W; ++l) {
          const double sum = out[l] + st[l];
          out[l] = sum < 1.0 ? sum : 1.0;
        }
        break;
    }
  }
}

#if defined(FACSP_SIMD_ENABLED) && defined(__x86_64__)

// AVX2 lanes: kLanes == 8 doubles as two 256-bit halves.  min/max intrinsic
// semantics (return the second operand on ties or NaN) are matched to the
// scalar ternaries operand-by-operand in the comments below.
__attribute__((target("avx2"))) void InferenceEngine::infer_lanes_simd(
    InferenceScratch& scratch) const {
  constexpr std::size_t W = kLanes;
  const double* const in = scratch.lane_inputs.data();
  double* const grades = scratch.lane_grades.data();
  double* const acts = scratch.lane_activations.data();
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d zeros = _mm256_setzero_pd();

  std::size_t s = 0;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const double* const x = in + i * W;
    const __m256d xv[2] = {_mm256_loadu_pd(x), _mm256_loadu_pd(x + 4)};
    for (std::size_t t = 0; t < inputs_[i].term_count(); ++t, ++s) {
      const LaneTerm& g = lane_terms_[s];
      double* const out = grades + s * W;
      if (!g.fast) {
        for (std::size_t l = 0; l < W; ++l)
          out[l] = g.mf->grade(clamp(x[l], g.lo, g.hi));
        continue;
      }
      const __m256d lov = _mm256_set1_pd(g.lo), hiv = _mm256_set1_pd(g.hi);
      const __m256d av = _mm256_set1_pd(g.a), bav = _mm256_set1_pd(g.ba);
      const __m256d dv = _mm256_set1_pd(g.d), dcv = _mm256_set1_pd(g.dc);
      for (int h = 0; h < 2; ++h) {
        // clamp: x < lo ? lo : x  ==  max(lo, x);  then  cx > hi ? hi : cx
        // == min(hi, cx).  Both keep the second operand on ties and pass a
        // NaN x through, exactly like the scalar ternaries.
        __m256d cx = _mm256_max_pd(lov, xv[h]);
        cx = _mm256_min_pd(hiv, cx);
        const __m256d rise =
            g.left_open ? ones : _mm256_div_pd(_mm256_sub_pd(cx, av), bav);
        const __m256d fall =
            g.right_open ? ones : _mm256_div_pd(_mm256_sub_pd(dv, cx), dcv);
        // rise < fall ? rise : fall == min(rise, fall) (NaN rise -> fall).
        __m256d v = _mm256_min_pd(rise, fall);
        v = _mm256_min_pd(v, ones);    // v < 1 ? v : 1
        v = _mm256_max_pd(v, zeros);   // v > 0 ? v : 0
        // cx == cx ? v : 0.0 — zero out NaN-input lanes (+0.0, like the
        // scalar path's literal 0.0).
        v = _mm256_and_pd(v, _mm256_cmp_pd(cx, cx, _CMP_ORD_Q));
        _mm256_storeu_pd(out + 4 * h, v);
      }
    }
  }

  const std::uint32_t* const slots = rule_slots_.data();
  for (const FlatRule& rule : flat_rules_) {
    __m256d st0 = ones, st1 = ones;
    if (options_.t_norm == TNorm::kMinimum) {
      for (std::uint32_t i = 0; i < rule.count; ++i) {
        const double* const gr = grades + slots[rule.first + i] * W;
        // g < st ? g : st == min(g, st); grades are never NaN here.
        st0 = _mm256_min_pd(_mm256_loadu_pd(gr), st0);
        st1 = _mm256_min_pd(_mm256_loadu_pd(gr + 4), st1);
      }
    } else {
      for (std::uint32_t i = 0; i < rule.count; ++i) {
        const double* const gr = grades + slots[rule.first + i] * W;
        st0 = _mm256_mul_pd(st0, _mm256_loadu_pd(gr));
        st1 = _mm256_mul_pd(st1, _mm256_loadu_pd(gr + 4));
      }
    }
    const __m256d wv = _mm256_set1_pd(rule.weight);
    st0 = _mm256_mul_pd(st0, wv);
    st1 = _mm256_mul_pd(st1, wv);
    double* const out = acts + rule.consequent * W;
    __m256d a0 = _mm256_loadu_pd(out), a1 = _mm256_loadu_pd(out + 4);
    switch (options_.s_norm) {
      case SNorm::kMaximum:
        a0 = _mm256_max_pd(a0, st0);  // acc > st ? acc : st
        a1 = _mm256_max_pd(a1, st1);
        break;
      case SNorm::kProbabilisticSum:
        a0 = _mm256_sub_pd(_mm256_add_pd(a0, st0), _mm256_mul_pd(a0, st0));
        a1 = _mm256_sub_pd(_mm256_add_pd(a1, st1), _mm256_mul_pd(a1, st1));
        break;
      case SNorm::kBoundedSum:
        a0 = _mm256_min_pd(_mm256_add_pd(a0, st0), ones);
        a1 = _mm256_min_pd(_mm256_add_pd(a1, st1), ones);
        break;
    }
    _mm256_storeu_pd(out, a0);
    _mm256_storeu_pd(out + 4, a1);
  }
}

#elif defined(FACSP_SIMD_ENABLED) && defined(__aarch64__)

// NEON lanes: kLanes == 8 doubles as four float64x2_t.  FMIN/FMAX propagate
// NaNs where SSE keeps the second operand, but a NaN input lane is forced to
// +0.0 by the final ordered-compare blend either way, so results stay
// bit-identical to the scalar path (non-NaN lanes see plain min/max; the
// only ±0 ties arise between equal +0 values).
void InferenceEngine::infer_lanes_simd(InferenceScratch& scratch) const {
  constexpr std::size_t W = kLanes;
  const double* const in = scratch.lane_inputs.data();
  double* const grades = scratch.lane_grades.data();
  double* const acts = scratch.lane_activations.data();
  const float64x2_t ones = vdupq_n_f64(1.0);
  const float64x2_t zeros = vdupq_n_f64(0.0);

  std::size_t s = 0;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const double* const x = in + i * W;
    for (std::size_t t = 0; t < inputs_[i].term_count(); ++t, ++s) {
      const LaneTerm& g = lane_terms_[s];
      double* const out = grades + s * W;
      if (!g.fast) {
        for (std::size_t l = 0; l < W; ++l)
          out[l] = g.mf->grade(clamp(x[l], g.lo, g.hi));
        continue;
      }
      const float64x2_t lov = vdupq_n_f64(g.lo), hiv = vdupq_n_f64(g.hi);
      const float64x2_t av = vdupq_n_f64(g.a), bav = vdupq_n_f64(g.ba);
      const float64x2_t dv = vdupq_n_f64(g.d), dcv = vdupq_n_f64(g.dc);
      for (int h = 0; h < 4; ++h) {
        float64x2_t cx = vld1q_f64(x + 2 * h);
        cx = vminq_f64(vmaxq_f64(lov, cx), hiv);
        const float64x2_t rise =
            g.left_open ? ones : vdivq_f64(vsubq_f64(cx, av), bav);
        const float64x2_t fall =
            g.right_open ? ones : vdivq_f64(vsubq_f64(dv, cx), dcv);
        float64x2_t v = vminq_f64(rise, fall);
        v = vminq_f64(v, ones);
        v = vmaxq_f64(v, zeros);
        // Zero NaN-input lanes: vceqq is false for NaN, so the bitwise and
        // forces +0.0 there.
        v = vreinterpretq_f64_u64(
            vandq_u64(vreinterpretq_u64_f64(v), vceqq_f64(cx, cx)));
        vst1q_f64(out + 2 * h, v);
      }
    }
  }

  double st[W];
  const std::uint32_t* const slots = rule_slots_.data();
  for (const FlatRule& rule : flat_rules_) {
    for (std::size_t l = 0; l < W; ++l) st[l] = 1.0;
    for (int h = 0; h < 4; ++h) {
      float64x2_t sv = vld1q_f64(st + 2 * h);
      if (options_.t_norm == TNorm::kMinimum) {
        for (std::uint32_t i = 0; i < rule.count; ++i)
          sv = vminq_f64(vld1q_f64(grades + slots[rule.first + i] * W + 2 * h),
                         sv);
      } else {
        for (std::uint32_t i = 0; i < rule.count; ++i)
          sv = vmulq_f64(sv,
                         vld1q_f64(grades + slots[rule.first + i] * W + 2 * h));
      }
      sv = vmulq_f64(sv, vdupq_n_f64(rule.weight));
      double* const out = acts + rule.consequent * W + 2 * h;
      float64x2_t acc = vld1q_f64(out);
      switch (options_.s_norm) {
        case SNorm::kMaximum:
          acc = vmaxq_f64(acc, sv);
          break;
        case SNorm::kProbabilisticSum:
          acc = vsubq_f64(vaddq_f64(acc, sv), vmulq_f64(acc, sv));
          break;
        case SNorm::kBoundedSum:
          acc = vminq_f64(vaddq_f64(acc, sv), ones);
          break;
      }
      vst1q_f64(out, acc);
    }
  }
}

#else

void InferenceEngine::infer_lanes_simd(InferenceScratch& scratch) const {
  // Unreachable (simd_active_ is false without FACSP_SIMD); keep the
  // symbol defined for the linker.
  infer_lanes_generic(scratch);
}

#endif

}  // namespace facsp::fuzzy
