// Defuzzification: turn an aggregated output fuzzy set into a crisp value.
//
// The paper uses a standard Mamdani pipeline; centroid (centre of gravity) is
// the default.  Alternative methods are provided for the ablation study
// (bench_ablation_defuzz) and for applications with different latency or
// smoothness needs.
#pragma once

#include "fuzzy/inference.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Supported defuzzification methods.
enum class DefuzzMethod {
  kCentroid,           ///< centre of gravity of the aggregated set (default)
  kBisector,           ///< vertical line splitting the area in half
  kMeanOfMaximum,      ///< mean of the y values attaining the maximum grade
  kSmallestOfMaximum,  ///< smallest y attaining the maximum grade
  kLargestOfMaximum,   ///< largest y attaining the maximum grade
  kWeightedAverage,    ///< activation-weighted average of term core centers
};

/// Parse/format helpers (used by benches and the CLI of examples).
const char* to_string(DefuzzMethod m) noexcept;
DefuzzMethod defuzz_method_from_string(std::string_view name);

/// Numeric defuzzifier over a bounded output universe.
///
/// All integral methods sample the aggregated membership on a uniform grid
/// of `resolution` points across the output variable's universe; 512 points
/// give < 1e-3 absolute error for the paper's piecewise-linear sets.
class Defuzzifier {
 public:
  explicit Defuzzifier(DefuzzMethod method = DefuzzMethod::kCentroid,
                       int resolution = 512, SNorm aggregation = SNorm::kMaximum);

  /// Crisp output for the aggregated set.  When no rule fired (empty set)
  /// returns the midpoint of the universe — a neutral value; FACS-P's rule
  /// bases are complete so this only happens for out-of-universe abuse.
  double defuzzify(const OutputFuzzySet& set,
                   const LinguisticVariable& output) const;

  DefuzzMethod method() const noexcept { return method_; }
  int resolution() const noexcept { return resolution_; }

 private:
  double centroid(const OutputFuzzySet& set,
                  const LinguisticVariable& output) const;
  double bisector(const OutputFuzzySet& set,
                  const LinguisticVariable& output) const;
  double of_maximum(const OutputFuzzySet& set,
                    const LinguisticVariable& output) const;
  double weighted_average(const OutputFuzzySet& set,
                          const LinguisticVariable& output) const;

  DefuzzMethod method_;
  int resolution_;
  SNorm aggregation_;
};

}  // namespace facsp::fuzzy
