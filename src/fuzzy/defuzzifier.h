// Defuzzification: turn an aggregated output fuzzy set into a crisp value.
//
// The paper uses a standard Mamdani pipeline; centroid (centre of gravity) is
// the default.  Alternative methods are provided for the ablation study
// (bench_ablation_defuzz) and for applications with different latency or
// smoothness needs.
//
// Two evaluation paths produce identical results:
//  * the naive path re-evaluates every output-term membership function at
//    every grid sample (no setup, works for any variable);
//  * the table-driven fast path reads precomputed per-term grade rows built
//    by prime() — tight fused loops over flat arrays with zero allocations.
// FuzzyController primes its defuzzifier at construction, so all controller
// evaluations take the fast path.
//
// For the default configuration — centroid method, max aggregation, min or
// product implication, and an output variable whose terms form an ordered
// partition with only adjacent-pair support overlap (every paper variable) —
// a third path computes the centroid *analytically*: each implicated term is
// a concave min of affine functions (alpha cut + rising/falling edges), so
// its area and first moment integrate in closed form, and the max envelope
// decomposes by inclusion-exclusion as single-term integrals minus the
// pairwise min over each adjacent overlap.  No grid, no O(resolution) work,
// exact up to rounding.  Unsupported methods/norms/term layouts fall back to
// the grid automatically; set_analytic_centroid(false) forces the grid path
// (used by the grid-parity tests and the resolution auto-tuner).
#pragma once

#include <memory>
#include <span>

#include "fuzzy/inference.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Supported defuzzification methods.
enum class DefuzzMethod {
  kCentroid,           ///< centre of gravity of the aggregated set (default)
  kBisector,           ///< vertical line splitting the area in half
  kMeanOfMaximum,      ///< mean of the y values attaining the maximum grade
  kSmallestOfMaximum,  ///< smallest y attaining the maximum grade
  kLargestOfMaximum,   ///< largest y attaining the maximum grade
  kWeightedAverage,    ///< activation-weighted average of term core centers
};

/// Parse/format helpers (used by benches and the CLI of examples).
const char* to_string(DefuzzMethod m) noexcept;
DefuzzMethod defuzz_method_from_string(std::string_view name);

/// Numeric defuzzifier over a bounded output universe.
///
/// All integral methods sample the aggregated membership on a uniform grid
/// of `resolution` points across the output variable's universe; 512 points
/// give < 1e-3 absolute error for the paper's piecewise-linear sets.
class Defuzzifier {
 public:
  explicit Defuzzifier(DefuzzMethod method = DefuzzMethod::kCentroid,
                       int resolution = 512, SNorm aggregation = SNorm::kMaximum);

  /// Precompute the sample grid for `output`: the y value of every grid
  /// point and each term's membership grade at those points.  The grid is
  /// keyed by variable identity (address), so it is only used when
  /// defuzzify() later receives the same variable; any other variable falls
  /// back to the naive path.  `output` must outlive the grid (the
  /// FuzzyController owns both).  Copies of a primed defuzzifier share the
  /// immutable grid.
  void prime(const LinguisticVariable& output);

  /// True when defuzzify(..., output) would take the table-driven path.
  bool primed_for(const LinguisticVariable& output) const noexcept;

  /// Crisp output for the aggregated set.  When no rule fired (empty set)
  /// returns the midpoint of the universe — a neutral value; FACS-P's rule
  /// bases are complete so this only happens for out-of-universe abuse.
  double defuzzify(const OutputFuzzySet& set,
                   const LinguisticVariable& output) const;

  /// Allocation-free form: activations one per output term, `implication`
  /// as applied by the inference engine, `mu_scratch` a reusable sample
  /// buffer (scratch.mu of the InferenceScratch threaded through the
  /// controller).  Zero heap allocations once primed and warm.
  double defuzzify(std::span<const double> activations,
                   Implication implication, const LinguisticVariable& output,
                   std::vector<double>& mu_scratch) const;

  DefuzzMethod method() const noexcept { return method_; }
  int resolution() const noexcept { return resolution_; }
  SNorm aggregation() const noexcept { return aggregation_; }

  /// True when (method, aggregation, implication) admits the closed-form
  /// alpha-cut centroid.  The term-layout requirement is checked separately
  /// (see analytic_applicable()).
  static bool analytic_supported(DefuzzMethod method, SNorm aggregation,
                                 Implication implication) noexcept;

  /// True when defuzzify(..., implication, output, ...) would take the
  /// analytic path: analytic centroids enabled, the operator combination is
  /// supported, and `output`'s terms form an ordered adjacent-overlap
  /// partition.
  bool analytic_applicable(const LinguisticVariable& output,
                           Implication implication) const noexcept;

  /// Enable/disable the analytic centroid path (default: enabled).  With it
  /// disabled every centroid evaluation uses the resolution-point grid —
  /// retained as an independent cross-check and for error measurement.
  void set_analytic_centroid(bool enabled) noexcept { analytic_ = enabled; }
  bool analytic_centroid() const noexcept { return analytic_; }

 private:
  /// Precomputed sample tables for one output variable.  Immutable after
  /// construction and shared by copies of the defuzzifier.
  struct Grid {
    const LinguisticVariable* variable = nullptr;  ///< identity key
    int resolution = 0;
    std::vector<double> ys;           ///< y value of each grid point
    std::vector<double> term_grades;  ///< term-major: [term * resolution + i]
    bool analytic_ok = false;  ///< term layout admits the analytic centroid
  };

  /// Aggregated membership at sample y (naive path).
  double aggregate_at(std::span<const double> activations, Implication impl,
                      const LinguisticVariable& output, double y) const;

  double defuzzify_grid(const Grid& grid, std::span<const double> activations,
                        Implication impl, const LinguisticVariable& output,
                        std::vector<double>& mu_scratch) const;

  double centroid(std::span<const double> activations, Implication impl,
                  const LinguisticVariable& output) const;
  double centroid_analytic(std::span<const double> activations,
                           Implication impl,
                           const LinguisticVariable& output) const;
  double bisector(std::span<const double> activations, Implication impl,
                  const LinguisticVariable& output,
                  std::vector<double>& mu_scratch) const;
  double of_maximum(std::span<const double> activations, Implication impl,
                    const LinguisticVariable& output) const;
  double weighted_average(std::span<const double> activations,
                          const LinguisticVariable& output) const;

  DefuzzMethod method_;
  int resolution_;
  SNorm aggregation_;
  bool analytic_ = true;
  std::shared_ptr<const Grid> grid_;
};

/// Result of tune_centroid_resolution().
struct ResolutionTuning {
  int resolution = 0;        ///< smallest probed grid meeting the bound
  double max_abs_error = 0;  ///< worst |grid - analytic| observed at it
  bool met_bound = false;    ///< false: even max_resolution missed the bound
};

/// Pick the smallest grid resolution whose centroid differs from the
/// analytic (exact) centroid by at most `abs_error_bound` across a
/// deterministic probe set of activation vectors (every term alone at
/// several heights, every adjacent pair, and pseudo-random mixtures).
/// Resolutions are probed doubling from max(8, min_resolution) up to
/// max_resolution; if even that misses the bound, the result carries
/// met_bound = false and the measured error so callers can decide.
/// Throws facsp::ConfigError when the analytic centroid is unavailable for
/// (output, implication, aggregation) — without an exact reference there is
/// nothing to tune against.
ResolutionTuning tune_centroid_resolution(const LinguisticVariable& output,
                                          Implication implication,
                                          SNorm aggregation,
                                          double abs_error_bound,
                                          int min_resolution = 8,
                                          int max_resolution = 1 << 14);

}  // namespace facsp::fuzzy
