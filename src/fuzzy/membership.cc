#include "fuzzy/membership.h"

#include <cmath>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/expects.h"
#include "common/math_util.h"

namespace facsp::fuzzy {

namespace {

void require_finite(double x, const char* name) {
  if (!std::isfinite(x))
    throw ConfigError(std::string("membership function: parameter '") + name +
                      "' must be finite");
}

void require_positive(double x, const char* name) {
  require_finite(x, name);
  if (x <= 0.0)
    throw ConfigError(std::string("membership function: width '") + name +
                      "' must be > 0, got " + std::to_string(x));
}

}  // namespace

MembershipFunction::MembershipFunction(double a, double b, double c, double d)
    : a_(a), b_(b), c_(c), d_(d) {
  if (!(a <= b && b <= c && c <= d))
    throw ConfigError(
        "membership function: breakpoints must satisfy a <= b <= c <= d");
  if (std::isnan(a) || std::isnan(b) || std::isnan(c) || std::isnan(d))
    throw ConfigError("membership function: breakpoints must not be NaN");
}

MembershipFunction MembershipFunction::triangular(double center,
                                                  double left_width,
                                                  double right_width) {
  require_finite(center, "center");
  require_positive(left_width, "left_width");
  require_positive(right_width, "right_width");
  return MembershipFunction(center - left_width, center, center,
                            center + right_width);
}

MembershipFunction MembershipFunction::trapezoidal(double plateau_lo,
                                                   double plateau_hi,
                                                   double left_width,
                                                   double right_width) {
  require_finite(plateau_lo, "plateau_lo");
  require_finite(plateau_hi, "plateau_hi");
  require_positive(left_width, "left_width");
  require_positive(right_width, "right_width");
  if (plateau_lo > plateau_hi)
    throw ConfigError("membership function: plateau_lo > plateau_hi");
  return MembershipFunction(plateau_lo - left_width, plateau_lo, plateau_hi,
                            plateau_hi + right_width);
}

MembershipFunction MembershipFunction::left_shoulder(double plateau_hi,
                                                     double right_width) {
  require_finite(plateau_hi, "plateau_hi");
  require_positive(right_width, "right_width");
  return MembershipFunction(-kInf, -kInf, plateau_hi,
                            plateau_hi + right_width);
}

MembershipFunction MembershipFunction::right_shoulder(double plateau_lo,
                                                      double left_width) {
  require_finite(plateau_lo, "plateau_lo");
  require_positive(left_width, "left_width");
  return MembershipFunction(plateau_lo - left_width, plateau_lo, kInf, kInf);
}

MembershipFunction MembershipFunction::singleton(double x) {
  require_finite(x, "x");
  return MembershipFunction(x, x, x, x);
}

MembershipFunction MembershipFunction::from_breakpoints(double a, double b,
                                                        double c, double d) {
  return MembershipFunction(a, b, c, d);
}

double MembershipFunction::grade(double x) const noexcept {
  if (std::isnan(x)) return 0.0;
  if (is_singleton()) return x == a_ ? 1.0 : 0.0;
  if (x <= a_ || x >= d_) {
    // Open shoulders: the plateau itself extends to the infinity, so a point
    // "beyond" the infinite side is impossible; but x exactly at a finite
    // support edge is 0 for the closed sides.
    if (x <= a_ && b_ == -kInf) return 1.0;  // unreachable (a_=-inf), safety
    if (x >= d_ && c_ == kInf) return 1.0;   // unreachable (d_=+inf), safety
    return 0.0;
  }
  // Interior (a, d): min(rise, fall, 1) with no branch on x's position.
  // On the plateau both edge ratios have numerator >= denominator > 0, so
  // each quotient rounds to >= 1 and the min yields exactly 1.0; on the
  // rising edge the falling ratio is >= 1 and vice versa, so the min picks
  // the exact same division the branchy form evaluated — bit-identical
  // output.  The remaining two ternaries compile to min/max instructions;
  // the shoulder checks are per-object constants (perfectly predicted),
  // unlike the per-call x < b_ / x <= c_ branches they replace.
  const double rise = b_ == -kInf ? 1.0 : (x - a_) / (b_ - a_);
  const double fall = c_ == kInf ? 1.0 : (d_ - x) / (d_ - c_);
  const double g = rise < fall ? rise : fall;
  return g < 1.0 ? g : 1.0;
}

double MembershipFunction::core_center() const noexcept {
  const bool lo_open = !std::isfinite(b_);
  const bool hi_open = !std::isfinite(c_);
  if (lo_open && hi_open) return 0.0;  // degenerate "always 1" set
  if (lo_open) return c_;
  if (hi_open) return b_;
  return 0.5 * (b_ + c_);
}

double MembershipFunction::alpha_cut_lo(double alpha) const {
  FACSP_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  if (!std::isfinite(b_)) return -kInf;
  if (is_singleton()) return a_;
  return a_ + alpha * (b_ - a_);
}

double MembershipFunction::alpha_cut_hi(double alpha) const {
  FACSP_EXPECTS(alpha > 0.0 && alpha <= 1.0);
  if (!std::isfinite(c_)) return kInf;
  if (is_singleton()) return d_;
  return d_ - alpha * (d_ - c_);
}

std::string MembershipFunction::describe() const {
  std::ostringstream os;
  if (is_singleton()) {
    os << "singleton(" << a_ << ")";
  } else if (b_ == -kInf) {
    os << "lshoulder(" << c_ << ", " << d_ << ")";
  } else if (c_ == kInf) {
    os << "rshoulder(" << a_ << ", " << b_ << ")";
  } else if (is_triangular()) {
    os << "tri(" << a_ << ", " << b_ << ", " << d_ << ")";
  } else {
    os << "trap(" << a_ << ", " << b_ << ", " << c_ << ", " << d_ << ")";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const MembershipFunction& mf) {
  return os << mf.describe();
}

}  // namespace facsp::fuzzy
