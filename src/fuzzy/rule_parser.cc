#include "fuzzy/rule_parser.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.h"

namespace facsp::fuzzy {

namespace {

struct Token {
  std::string text;
};

std::string to_upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back({cur});
      cur.clear();
    }
  };
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '[' || c == ']') {
      flush();
      out.push_back({std::string(1, c)});
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return out;
}

bool is_keyword(const Token& t, const char* kw) {
  return to_upper(t.text) == kw;
}

}  // namespace

FuzzyRule parse_rule(const std::string& text,
                     const std::vector<LinguisticVariable>& inputs,
                     const LinguisticVariable& output) {
  const auto tokens = tokenize(text);
  std::size_t pos = 0;
  auto need = [&](const char* what) -> const Token& {
    if (pos >= tokens.size())
      throw ParseError("rule '" + text + "': expected " + what +
                       " but input ended");
    return tokens[pos];
  };

  if (!is_keyword(need("IF"), "IF"))
    throw ParseError("rule '" + text + "': must start with IF");
  ++pos;

  FuzzyRule rule;
  rule.antecedents.assign(inputs.size(), FuzzyRule::kAny);
  bool then_seen = false;

  while (!then_seen) {
    const std::string var = need("variable name").text;
    ++pos;
    if (!is_keyword(need("'is'"), "IS"))
      throw ParseError("rule '" + text + "': expected 'is' after '" + var +
                       "'");
    ++pos;
    const std::string term = need("term name").text;
    ++pos;

    // Bind the clause to an input or detect it is a stray output clause.
    bool bound = false;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (inputs[i].name() == var) {
        if (rule.antecedents[i] != FuzzyRule::kAny)
          throw ParseError("rule '" + text + "': variable '" + var +
                           "' constrained twice");
        rule.antecedents[i] = (term == "*")
                                  ? FuzzyRule::kAny
                                  : inputs[i].term_index(term);
        bound = true;
        break;
      }
    }
    if (!bound)
      throw ConfigError("rule '" + text + "': unknown input variable '" + var +
                        "'");

    if (pos >= tokens.size())
      throw ParseError("rule '" + text + "': missing THEN clause");
    if (is_keyword(tokens[pos], "AND")) {
      ++pos;
    } else if (is_keyword(tokens[pos], "THEN")) {
      ++pos;
      then_seen = true;
    } else {
      throw ParseError("rule '" + text + "': expected AND or THEN, got '" +
                       tokens[pos].text + "'");
    }
  }

  const std::string out_var = need("output variable").text;
  ++pos;
  if (out_var != output.name())
    throw ConfigError("rule '" + text + "': consequent variable '" + out_var +
                      "' is not the output '" + output.name() + "'");
  if (!is_keyword(need("'is'"), "IS"))
    throw ParseError("rule '" + text + "': expected 'is' in consequent");
  ++pos;
  rule.consequent = output.term_index(need("output term").text);
  ++pos;

  if (pos < tokens.size() && tokens[pos].text == "[") {
    ++pos;
    const std::string w = need("weight").text;
    ++pos;
    try {
      rule.weight = std::stod(w);
    } catch (const std::exception&) {
      throw ParseError("rule '" + text + "': bad weight '" + w + "'");
    }
    if (pos >= tokens.size() || tokens[pos].text != "]")
      throw ParseError("rule '" + text + "': missing ']' after weight");
    ++pos;
  }
  if (pos != tokens.size())
    throw ParseError("rule '" + text + "': trailing tokens after rule");
  return rule;
}

std::vector<FuzzyRule> parse_rules(const std::string& text,
                                   const std::vector<LinguisticVariable>& inputs,
                                   const LinguisticVariable& output) {
  std::vector<FuzzyRule> rules;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const bool blank = std::all_of(line.begin(), line.end(), [](unsigned char c) {
      return std::isspace(c);
    });
    if (blank) continue;
    try {
      rules.push_back(parse_rule(line, inputs, output));
    } catch (const ParseError& e) {
      throw ParseError(e.what(), lineno);
    } catch (const ConfigError& e) {
      // Semantic errors (unknown variable/term) also carry line context
      // when parsing a file.
      throw ParseError(e.what(), lineno);
    }
  }
  return rules;
}

}  // namespace facsp::fuzzy
