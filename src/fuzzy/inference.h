// Mamdani-style fuzzy inference.
//
// Pipeline (paper Fig. 2): fuzzifier -> inference engine (+FRB) -> defuzzifier.
// This header implements the middle stage: given crisp inputs, compute each
// rule's firing strength with a t-norm over antecedent grades, apply the
// implication operator to the consequent set, and aggregate per output term
// with an s-norm.  The result is an OutputFuzzySet — the activation level of
// every output term — which the defuzzifier turns into a crisp value.
#pragma once

#include <span>
#include <vector>

#include "fuzzy/rulebase.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Triangular norm used to combine antecedent grades (AND semantics).
enum class TNorm {
  kMinimum,  ///< Zadeh AND: min(a, b) — the paper's choice
  kProduct,  ///< probabilistic AND: a*b
};

/// Triangular co-norm used to aggregate activations of the same output term.
enum class SNorm {
  kMaximum,          ///< Zadeh OR: max(a, b) — the paper's choice
  kProbabilisticSum, ///< a + b - a*b
  kBoundedSum,       ///< min(1, a + b)
};

/// Implication operator clipping/scaling the consequent set.
enum class Implication {
  kMinimum,  ///< clip consequent at firing strength (Mamdani) — paper
  kProduct,  ///< scale consequent by firing strength (Larsen)
};

/// Apply an s-norm to two grades.
inline double apply_snorm(SNorm s, double a, double b) noexcept {
  switch (s) {
    case SNorm::kMaximum:
      return a > b ? a : b;
    case SNorm::kProbabilisticSum:
      return a + b - a * b;
    case SNorm::kBoundedSum:
      return a + b < 1.0 ? a + b : 1.0;
  }
  return a > b ? a : b;  // unreachable
}

/// Apply an implication operator to a rule activation and a term grade.
inline double apply_implication(Implication impl, double activation,
                                double term_grade) noexcept {
  switch (impl) {
    case Implication::kMinimum:
      return activation < term_grade ? activation : term_grade;
    case Implication::kProduct:
      return activation * term_grade;
  }
  return activation < term_grade ? activation : term_grade;  // unreachable
}

/// Knobs for the inference engine; defaults are the paper's configuration.
struct InferenceOptions {
  TNorm t_norm = TNorm::kMinimum;
  SNorm s_norm = SNorm::kMaximum;
  Implication implication = Implication::kMinimum;
};

/// Aggregated inference result: one activation level per output term.
///
/// The aggregated output membership is
///   mu_out(y) = s_norm over terms k of impl(activation[k], mu_k(y)).
struct OutputFuzzySet {
  std::vector<double> activations;  ///< indexed by output term
  Implication implication = Implication::kMinimum;

  /// Aggregated membership at y given the output variable's term shapes.
  double grade(const LinguisticVariable& output, double y,
               SNorm s_norm = SNorm::kMaximum) const;

  /// True when no rule fired (all activations zero).
  bool empty() const noexcept;

  /// Highest activation across terms.
  double height() const noexcept;
};

/// Per-rule firing record, for explanation/tracing (rule_explorer example).
struct FiredRule {
  std::size_t rule_index = 0;
  double strength = 0.0;  ///< t-norm of antecedent grades times rule weight
};

/// Reusable evaluation arena for the allocation-free inference fast path.
///
/// All buffers grow to their steady-state size on the first evaluation and
/// are reused afterwards, so repeated infer_into()/evaluate_with() calls
/// perform zero heap allocations.  One scratch may be shared across
/// controllers (each call resizes logically, capacity only ever grows) but
/// not across threads.
struct InferenceScratch {
  std::vector<double> grades;       ///< fuzzified input grades, flat per input
  std::vector<double> activations;  ///< one activation per output term
  std::vector<FiredRule> fired;     ///< fired-rule buffer (traced path only)
  std::vector<double> mu;           ///< defuzzifier sample buffer
};

/// Stateless Mamdani inference engine over a fixed (inputs, output, rules)
/// triple.  Thread-safe: evaluation does not mutate the engine.
class InferenceEngine {
 public:
  /// The referenced variables and rule base must outlive the engine; the
  /// FuzzyController owns all of them and the engine internally.
  InferenceEngine(const std::vector<LinguisticVariable>& inputs,
                  const LinguisticVariable& output, const RuleBase& rules,
                  InferenceOptions options = {});

  /// Run fuzzification + rule evaluation + aggregation for the crisp input
  /// vector (one value per input variable, clamped to each universe).
  /// Precondition: crisp_inputs.size() == number of input variables.
  OutputFuzzySet infer(std::span<const double> crisp_inputs) const;

  /// As infer(), but also reports every rule with non-zero firing strength
  /// (descending by strength).
  OutputFuzzySet infer_traced(std::span<const double> crisp_inputs,
                              std::vector<FiredRule>& fired) const;

  /// Allocation-free fast path: fuzzify into scratch.grades and aggregate
  /// into scratch.activations (one entry per output term).  No fired-rule
  /// bookkeeping.  Zero heap allocations once scratch is warm.
  void infer_into(std::span<const double> crisp_inputs,
                  InferenceScratch& scratch) const;

  /// As infer_into(), but also fills scratch.fired with every rule of
  /// non-zero firing strength, descending by strength.
  void infer_traced_into(std::span<const double> crisp_inputs,
                         InferenceScratch& scratch) const;

  const InferenceOptions& options() const noexcept { return options_; }

  /// Total input-grade slots a scratch uses (sum of input term counts).
  std::size_t grade_count() const noexcept { return total_grades_; }

 private:
  double combine_and(double a, double b) const noexcept;
  double combine_or(double a, double b) const noexcept;
  /// Shared core of all evaluation entry points; collects fired rules only
  /// when `fired` is non-null (the untraced path skips that work entirely).
  void run(std::span<const double> crisp_inputs, InferenceScratch& scratch,
           std::vector<FiredRule>* fired) const;

  const std::vector<LinguisticVariable>& inputs_;
  const LinguisticVariable& output_;
  const RuleBase& rules_;
  InferenceOptions options_;
  std::vector<std::size_t> grade_offsets_;  ///< input i's offset in grades
  std::size_t total_grades_ = 0;
};

}  // namespace facsp::fuzzy
