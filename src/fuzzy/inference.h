// Mamdani-style fuzzy inference.
//
// Pipeline (paper Fig. 2): fuzzifier -> inference engine (+FRB) -> defuzzifier.
// This header implements the middle stage: given crisp inputs, compute each
// rule's firing strength with a t-norm over antecedent grades, apply the
// implication operator to the consequent set, and aggregate per output term
// with an s-norm.  The result is an OutputFuzzySet — the activation level of
// every output term — which the defuzzifier turns into a crisp value.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fuzzy/rulebase.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Triangular norm used to combine antecedent grades (AND semantics).
enum class TNorm {
  kMinimum,  ///< Zadeh AND: min(a, b) — the paper's choice
  kProduct,  ///< probabilistic AND: a*b
};

/// Triangular co-norm used to aggregate activations of the same output term.
enum class SNorm {
  kMaximum,          ///< Zadeh OR: max(a, b) — the paper's choice
  kProbabilisticSum, ///< a + b - a*b
  kBoundedSum,       ///< min(1, a + b)
};

/// Implication operator clipping/scaling the consequent set.
enum class Implication {
  kMinimum,  ///< clip consequent at firing strength (Mamdani) — paper
  kProduct,  ///< scale consequent by firing strength (Larsen)
};

/// Apply an s-norm to two grades.
inline double apply_snorm(SNorm s, double a, double b) noexcept {
  switch (s) {
    case SNorm::kMaximum:
      return a > b ? a : b;
    case SNorm::kProbabilisticSum:
      return a + b - a * b;
    case SNorm::kBoundedSum:
      return a + b < 1.0 ? a + b : 1.0;
  }
  return a > b ? a : b;  // unreachable
}

/// Apply an implication operator to a rule activation and a term grade.
inline double apply_implication(Implication impl, double activation,
                                double term_grade) noexcept {
  switch (impl) {
    case Implication::kMinimum:
      return activation < term_grade ? activation : term_grade;
    case Implication::kProduct:
      return activation * term_grade;
  }
  return activation < term_grade ? activation : term_grade;  // unreachable
}

/// Knobs for the inference engine; defaults are the paper's configuration.
struct InferenceOptions {
  TNorm t_norm = TNorm::kMinimum;
  SNorm s_norm = SNorm::kMaximum;
  Implication implication = Implication::kMinimum;
  /// Allow the SIMD kernels on the batched path (only effective when the
  /// library is built with FACSP_SIMD and the CPU supports them).  The
  /// scalar fallback is bit-identical, so this is a performance knob only;
  /// the bit-identity tests build one controller with each setting.
  bool simd = true;
};

/// Aggregated inference result: one activation level per output term.
///
/// The aggregated output membership is
///   mu_out(y) = s_norm over terms k of impl(activation[k], mu_k(y)).
struct OutputFuzzySet {
  std::vector<double> activations;  ///< indexed by output term
  Implication implication = Implication::kMinimum;

  /// Aggregated membership at y given the output variable's term shapes.
  double grade(const LinguisticVariable& output, double y,
               SNorm s_norm = SNorm::kMaximum) const;

  /// True when no rule fired (all activations zero).
  bool empty() const noexcept;

  /// Highest activation across terms.
  double height() const noexcept;
};

/// Per-rule firing record, for explanation/tracing (rule_explorer example).
struct FiredRule {
  std::size_t rule_index = 0;
  double strength = 0.0;  ///< t-norm of antecedent grades times rule weight
};

/// Reusable evaluation arena for the allocation-free inference fast path.
///
/// All buffers grow to their steady-state size on the first evaluation and
/// are reused afterwards, so repeated infer_into()/evaluate_with() calls
/// perform zero heap allocations.  One scratch may be shared across
/// controllers (each call resizes logically, capacity only ever grows) but
/// not across threads.
struct InferenceScratch {
  std::vector<double> grades;       ///< fuzzified input grades, flat per input
  std::vector<double> activations;  ///< one activation per output term
  std::vector<FiredRule> fired;     ///< fired-rule buffer (traced path only)
  std::vector<double> mu;           ///< defuzzifier sample buffer

  // Structure-of-arrays block for the batched path (infer_batch_into /
  // evaluate_batch_with): lane-major flat arrays of kLanes decisions each,
  // laid out so one index step moves across decisions, not across terms —
  // the per-lane loops then compile to (or are hand-written as) SIMD.
  std::vector<double> lane_inputs;       ///< [input * kLanes + lane]
  std::vector<double> lane_grades;       ///< [grade slot * kLanes + lane]
  std::vector<double> lane_activations;  ///< [output term * kLanes + lane]

  // Row staging for multi-controller cascades over one batch (the fuzzy CAC
  // decide_batch builds FLC1's rows, then FLC2's rows, in place here).
  std::vector<double> batch_rows;  ///< row-major [row * input_count + i]
  std::vector<double> batch_out;   ///< one crisp value per row
};

/// Stateless Mamdani inference engine over a fixed (inputs, output, rules)
/// triple.  Thread-safe: evaluation does not mutate the engine.
class InferenceEngine {
 public:
  /// Decisions processed per structure-of-arrays block by the batched path.
  static constexpr std::size_t kLanes = 8;

  /// The referenced variables and rule base must outlive the engine; the
  /// FuzzyController owns all of them and the engine internally.
  InferenceEngine(const std::vector<LinguisticVariable>& inputs,
                  const LinguisticVariable& output, const RuleBase& rules,
                  InferenceOptions options = {});

  /// Run fuzzification + rule evaluation + aggregation for the crisp input
  /// vector (one value per input variable, clamped to each universe).
  /// Precondition: crisp_inputs.size() == number of input variables.
  OutputFuzzySet infer(std::span<const double> crisp_inputs) const;

  /// As infer(), but also reports every rule with non-zero firing strength
  /// (descending by strength).
  OutputFuzzySet infer_traced(std::span<const double> crisp_inputs,
                              std::vector<FiredRule>& fired) const;

  /// Allocation-free fast path: fuzzify into scratch.grades and aggregate
  /// into scratch.activations (one entry per output term).  No fired-rule
  /// bookkeeping.  Zero heap allocations once scratch is warm.
  void infer_into(std::span<const double> crisp_inputs,
                  InferenceScratch& scratch) const;

  /// As infer_into(), but also fills scratch.fired with every rule of
  /// non-zero firing strength, descending by strength.
  void infer_traced_into(std::span<const double> crisp_inputs,
                         InferenceScratch& scratch) const;

  /// Structure-of-arrays batched inference over `rows` decisions (1 <=
  /// rows <= kLanes): `crisp_inputs` holds rows * input-count values
  /// row-major; scratch.lane_activations receives every output term's
  /// activation per lane ([term * kLanes + lane]; lanes >= rows are padding
  /// and must be ignored).  Per lane the result is bit-identical to
  /// infer_into() on that lane's row — with the SIMD kernels enabled or not
  /// (kernels use only min/max/mul/add/sub/div lane ops, never FMA, in the
  /// scalar evaluation order).  Zero heap allocations once scratch is warm.
  void infer_batch_into(std::span<const double> crisp_inputs,
                        std::size_t rows, InferenceScratch& scratch) const;

  /// True when infer_batch_into() dispatches to hand-written SIMD kernels
  /// (library built with FACSP_SIMD, options.simd, CPU support).
  bool simd_active() const noexcept { return simd_active_; }

  const InferenceOptions& options() const noexcept { return options_; }

  /// Total input-grade slots a scratch uses (sum of input term counts).
  std::size_t grade_count() const noexcept { return total_grades_; }

 private:
  /// One rule flattened for the hot loops: a window into rule_slots_ (the
  /// grade-arena indices of its non-wildcard antecedents, in antecedent
  /// order) plus weight and consequent term.
  struct FlatRule {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::uint32_t consequent = 0;
    double weight = 1.0;
  };

  /// Per grade slot: the term geometry the branchless lane fuzzifier needs.
  /// `ba`/`dc` are the exact denominators (b - a, d - c) the scalar grade()
  /// divides by, precomputed so the lane kernel performs the identical
  /// division.  `fast` is false for singletons and zero-width-edge
  /// degenerates, which take a scalar per-lane fallback through mf->grade().
  struct LaneTerm {
    double a = 0.0, ba = 1.0, d = 0.0, dc = 1.0;
    double lo = 0.0, hi = 0.0;  ///< universe clamp bounds
    bool left_open = false;     ///< b == -inf: rising edge is constant 1
    bool right_open = false;    ///< c == +inf: falling edge is constant 1
    bool fast = false;
    const MembershipFunction* mf = nullptr;
  };

  /// Dense antecedent-indexed rule table for the sparse-fire scalar fast
  /// path: entry [t0 * n1 * n2 + t1 * n2 + t2] holds the consequent and
  /// weight of the rule whose antecedents are exactly (t0, t1, t2), or
  /// consequent -1 where no rule exists.  Built only for wildcard-free,
  /// duplicate-free rule bases under max aggregation (see ctor).
  struct DenseRule {
    std::int32_t consequent = -1;
    double weight = 1.0;
  };
  /// Stack bounds for the sparse-fire enumeration in run(); rule bases
  /// exceeding them simply keep the linear scan.
  static constexpr std::size_t kMaxDenseInputs = 8;
  static constexpr std::size_t kMaxDenseTerms = 16;

  double combine_and(double a, double b) const noexcept;
  double combine_or(double a, double b) const noexcept;
  /// Shared core of all evaluation entry points; collects fired rules only
  /// when `fired` is non-null (the untraced path skips that work entirely).
  void run(std::span<const double> crisp_inputs, InferenceScratch& scratch,
           std::vector<FiredRule>* fired) const;

  /// Lane kernels behind infer_batch_into(): portable flat loops vs
  /// hand-written SIMD (defined in inference_batch.cc).
  void infer_lanes_generic(InferenceScratch& scratch) const;
  void infer_lanes_simd(InferenceScratch& scratch) const;

  const std::vector<LinguisticVariable>& inputs_;
  const LinguisticVariable& output_;
  const RuleBase& rules_;
  InferenceOptions options_;
  std::vector<std::size_t> grade_offsets_;  ///< input i's offset in grades
  std::size_t total_grades_ = 0;
  std::vector<FlatRule> flat_rules_;
  std::vector<std::uint32_t> rule_slots_;
  std::vector<DenseRule> dense_rules_;  ///< antecedent-tuple indexed
  bool dense_ok_ = false;
  std::vector<LaneTerm> lane_terms_;  ///< one per grade slot
  bool simd_active_ = false;
};

}  // namespace facsp::fuzzy
