// Fuzzy IF-THEN rules.
//
// A rule pairs one antecedent term index per input variable (or kAny as a
// wildcard) with a consequent term index on the output variable, e.g. paper
// Table 1 rule 0:  IF Sp is Sl AND An is B1 AND Sr is Sm THEN Cv is Cv1.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace facsp::fuzzy {

class LinguisticVariable;

/// One conjunctive (AND) fuzzy rule.
struct FuzzyRule {
  /// Wildcard antecedent: the input variable does not constrain this rule.
  static constexpr std::size_t kAny = std::numeric_limits<std::size_t>::max();

  /// Term index into the i-th input variable's term list, or kAny.
  std::vector<std::size_t> antecedents;
  /// Term index into the output variable's term list.
  std::size_t consequent = 0;
  /// Rule weight in (0, 1]; scales the firing strength (1.0 = paper default).
  double weight = 1.0;

  friend bool operator==(const FuzzyRule&, const FuzzyRule&) = default;
};

/// Render a rule as "IF Sp is Sl AND An is B1 AND Sr is Sm THEN Cv is Cv1".
/// `inputs` and `output` supply the variable/term names.
std::string to_string(const FuzzyRule& rule,
                      const std::vector<LinguisticVariable>& inputs,
                      const LinguisticVariable& output);

}  // namespace facsp::fuzzy
