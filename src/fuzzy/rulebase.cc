#include "fuzzy/rulebase.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/expects.h"

namespace facsp::fuzzy {

RuleBase::RuleBase(std::vector<FuzzyRule> rules,
                   const std::vector<LinguisticVariable>& inputs,
                   const LinguisticVariable& output)
    : rules_(std::move(rules)), output_term_count_(output.term_count()) {
  if (inputs.empty())
    throw ConfigError("rule base: at least one input variable required");
  input_term_counts_.reserve(inputs.size());
  for (const auto& v : inputs) input_term_counts_.push_back(v.term_count());

  for (std::size_t r = 0; r < rules_.size(); ++r) {
    const FuzzyRule& rule = rules_[r];
    if (rule.antecedents.size() != inputs.size())
      throw ConfigError("rule base: rule " + std::to_string(r) + " has " +
                        std::to_string(rule.antecedents.size()) +
                        " antecedents, expected " +
                        std::to_string(inputs.size()));
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::size_t a = rule.antecedents[i];
      if (a != FuzzyRule::kAny && a >= input_term_counts_[i])
        throw ConfigError("rule base: rule " + std::to_string(r) +
                          ": antecedent term index " + std::to_string(a) +
                          " out of range for variable '" + inputs[i].name() +
                          "'");
    }
    if (rule.consequent >= output_term_count_)
      throw ConfigError("rule base: rule " + std::to_string(r) +
                        ": consequent term index out of range for variable '" +
                        output.name() + "'");
    if (!(rule.weight > 0.0 && rule.weight <= 1.0))
      throw ConfigError("rule base: rule " + std::to_string(r) +
                        ": weight must be in (0, 1]");
  }
}

const FuzzyRule& RuleBase::rule(std::size_t i) const {
  FACSP_EXPECTS(i < rules_.size());
  return rules_[i];
}

std::size_t RuleBase::combination_count() const noexcept {
  return std::accumulate(input_term_counts_.begin(), input_term_counts_.end(),
                         std::size_t{1}, std::multiplies<>());
}

bool RuleBase::is_complete() const {
  // Enumerate every combination (mixed-radix counter) and check that at
  // least one rule matches it.  FRB sizes in this domain are tiny (<= 63),
  // so the O(combinations * rules) scan is instantaneous.
  std::vector<std::size_t> combo(input_term_counts_.size(), 0);
  const std::size_t total = combination_count();
  for (std::size_t n = 0; n < total; ++n) {
    bool matched = false;
    for (const auto& rule : rules_) {
      bool ok = true;
      for (std::size_t i = 0; i < combo.size(); ++i) {
        if (rule.antecedents[i] != FuzzyRule::kAny &&
            rule.antecedents[i] != combo[i]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
    // increment mixed-radix counter (last digit fastest)
    for (std::size_t i = combo.size(); i-- > 0;) {
      if (++combo[i] < input_term_counts_[i]) break;
      combo[i] = 0;
    }
  }
  return true;
}

std::vector<std::pair<std::size_t, std::size_t>> RuleBase::conflicts() const {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < rules_.size(); ++i)
    for (std::size_t j = i + 1; j < rules_.size(); ++j)
      if (rules_[i].antecedents == rules_[j].antecedents &&
          rules_[i].consequent != rules_[j].consequent)
        out.emplace_back(i, j);
  return out;
}

RuleBase RuleBase::from_table(const std::vector<LinguisticVariable>& inputs,
                              const LinguisticVariable& output,
                              const std::vector<std::string>& consequent_names) {
  std::size_t total = 1;
  for (const auto& v : inputs) total *= v.term_count();
  if (consequent_names.size() != total)
    throw ConfigError("rule base table: expected " + std::to_string(total) +
                      " consequents, got " +
                      std::to_string(consequent_names.size()));

  std::vector<FuzzyRule> rules;
  rules.reserve(total);
  std::vector<std::size_t> combo(inputs.size(), 0);
  for (std::size_t n = 0; n < total; ++n) {
    FuzzyRule r;
    r.antecedents = combo;
    r.consequent = output.term_index(consequent_names[n]);
    rules.push_back(std::move(r));
    for (std::size_t i = combo.size(); i-- > 0;) {
      if (++combo[i] < inputs[i].term_count()) break;
      combo[i] = 0;
    }
  }
  return RuleBase(std::move(rules), inputs, output);
}

}  // namespace facsp::fuzzy
