// FuzzyController: the complete FLC of paper Fig. 2 — fuzzifier, inference
// engine, fuzzy rule base and defuzzifier behind one crisp-in/crisp-out call.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fuzzy/defuzzifier.h"
#include "fuzzy/inference.h"
#include "fuzzy/rulebase.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Full rule-firing explanation of one evaluation (rule_explorer example and
/// debugging).
struct Explanation {
  std::vector<FiredRule> fired;        ///< rules with strength > 0, descending
  OutputFuzzySet aggregated;           ///< per-term activations
  double crisp = 0.0;                  ///< defuzzified output
  std::vector<std::string> rule_text;  ///< printable form of each fired rule
};

/// Crisp-in / crisp-out Mamdani fuzzy logic controller.
///
/// Owns its variables, rule base, inference engine and defuzzifier.  The
/// object is immutable after construction and safe to share across threads
/// for concurrent evaluate() calls.
class FuzzyController {
 public:
  /// Throws facsp::ConfigError when the rule base does not match the
  /// variables (arity/term indices) — see RuleBase.
  FuzzyController(std::string name, std::vector<LinguisticVariable> inputs,
                  LinguisticVariable output, std::vector<FuzzyRule> rules,
                  InferenceOptions inference = {},
                  Defuzzifier defuzzifier = Defuzzifier{});

  FuzzyController(const FuzzyController&) = delete;
  FuzzyController& operator=(const FuzzyController&) = delete;
  FuzzyController(FuzzyController&&) = delete;
  FuzzyController& operator=(FuzzyController&&) = delete;

  /// Evaluate the controller for the crisp input vector (one entry per input
  /// variable, clamped to universes).  Returns the defuzzified output.
  /// Internally reuses a thread-local scratch arena, so steady-state calls
  /// perform zero heap allocations.
  double evaluate(std::span<const double> crisp_inputs) const;

  /// Convenience overload for initializer lists: evaluate({30.0, 0.0, 5.0}).
  double evaluate(std::initializer_list<double> crisp_inputs) const;

  /// Explicit-scratch form of evaluate(): all intermediate storage lives in
  /// `scratch`, which warms up on the first call and is then reused without
  /// further allocation.  One scratch may serve several controllers (e.g.
  /// the FLC1 -> FLC2 cascade) but must not be shared across threads.
  double evaluate_with(InferenceScratch& scratch,
                       std::span<const double> crisp_inputs) const;

  /// Batched evaluation: `crisp_inputs` holds out.size() rows of
  /// input_count() values each (row-major), `out` receives one crisp output
  /// per row.  One scratch is reused across the whole batch.
  void evaluate_batch(std::span<const double> crisp_inputs,
                      std::span<double> out) const;

  /// Explicit-scratch form of evaluate_batch(): rows are processed in
  /// structure-of-arrays blocks of InferenceEngine::kLanes through the lane
  /// kernels (SIMD when enabled), then defuzzified per row.  Each output is
  /// bit-identical to evaluate_with() on that row.  Zero heap allocations
  /// once `scratch` is warm.
  void evaluate_batch_with(InferenceScratch& scratch,
                           std::span<const double> crisp_inputs,
                           std::span<double> out) const;

  /// Evaluate and capture the full rule-firing explanation.
  Explanation explain(std::span<const double> crisp_inputs) const;

  const std::string& name() const noexcept { return name_; }
  std::size_t input_count() const noexcept { return inputs_.size(); }
  const std::vector<LinguisticVariable>& inputs() const noexcept {
    return inputs_;
  }
  const LinguisticVariable& input(std::size_t i) const;
  const LinguisticVariable& output() const noexcept { return output_; }
  const RuleBase& rules() const noexcept { return rules_; }
  const Defuzzifier& defuzzifier() const noexcept { return defuzz_; }
  const InferenceOptions& inference_options() const noexcept {
    return engine_->options();
  }

 private:
  std::string name_;
  std::vector<LinguisticVariable> inputs_;
  LinguisticVariable output_;
  RuleBase rules_;
  Defuzzifier defuzz_;
  // Engine references inputs_/output_/rules_, so it must be built last and
  // the controller is non-movable.
  std::unique_ptr<InferenceEngine> engine_;
};

}  // namespace facsp::fuzzy
