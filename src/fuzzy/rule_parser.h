// Textual fuzzy rule parser.
//
// Grammar (case-sensitive identifiers, case-insensitive keywords):
//   rule    := "IF" clause ("AND" clause)* "THEN" clause weight?
//   clause  := ident "is" ident
//   weight  := "[" float "]"
//
// Variables may appear in any order and may be omitted (omitted -> wildcard).
// Example: "IF Sp is Sl AND Sr is Sm THEN Cv is Cv1 [0.8]".
#pragma once

#include <string>
#include <vector>

#include "fuzzy/rule.h"
#include "fuzzy/variable.h"

namespace facsp::fuzzy {

/// Parse one rule against the declared variables.
/// Throws facsp::ParseError on syntax errors and facsp::ConfigError on
/// unknown variable/term names.
FuzzyRule parse_rule(const std::string& text,
                     const std::vector<LinguisticVariable>& inputs,
                     const LinguisticVariable& output);

/// Parse a rule file: one rule per line; blank lines and '#' comments are
/// skipped.  Errors carry 1-based line numbers.
std::vector<FuzzyRule> parse_rules(const std::string& text,
                                   const std::vector<LinguisticVariable>& inputs,
                                   const LinguisticVariable& output);

}  // namespace facsp::fuzzy
