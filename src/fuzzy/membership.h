// Membership functions for fuzzy sets.
//
// The paper (Fig. 3) uses two shapes: a triangular function
//   f(x; x0, a0, a1)  — peak 1 at x0, falling linearly to 0 at x0-a0 / x0+a1
// and a trapezoidal function
//   g(x; x0, x1, a0, a1) — plateau 1 on [x0, x1], 0 at x0-a0 / x1+a1.
//
// Both (plus the open "shoulder" variants used at universe edges and crisp
// singletons) are represented here by one value-semantic type holding the four
// canonical breakpoints a <= b <= c <= d with membership
//     0 on (-inf, a], rising on [a, b], 1 on [b, c], falling on [c, d],
//     0 on [d, +inf).
// Shoulders use infinite a/b (left shoulder: plateau extends to -inf) or c/d.
#pragma once

#include <iosfwd>
#include <string>

namespace facsp::fuzzy {

/// A (possibly degenerate) trapezoidal membership function.
///
/// Value type; cheap to copy.  All factory functions validate their geometry
/// and throw facsp::ConfigError on non-monotonic breakpoints or non-positive
/// widths where a positive width is required.
class MembershipFunction {
 public:
  /// The paper's f(x; x0, a0, a1): triangle peaking at `center` with left
  /// width `left_width` and right width `right_width` (both > 0).
  static MembershipFunction triangular(double center, double left_width,
                                       double right_width);

  /// The paper's g(x; x0, x1, a0, a1): plateau on [plateau_lo, plateau_hi]
  /// with left width `left_width` and right width `right_width` (both > 0).
  static MembershipFunction trapezoidal(double plateau_lo, double plateau_hi,
                                        double left_width, double right_width);

  /// Open trapezoid whose plateau extends to -infinity: grade is 1 for
  /// x <= plateau_hi, falling to 0 at plateau_hi + right_width.
  static MembershipFunction left_shoulder(double plateau_hi,
                                          double right_width);

  /// Open trapezoid whose plateau extends to +infinity: grade is 0 until
  /// plateau_lo - left_width, 1 for x >= plateau_lo.
  static MembershipFunction right_shoulder(double plateau_lo,
                                           double left_width);

  /// Crisp singleton at x (grade 1 exactly at x, else 0).
  static MembershipFunction singleton(double x);

  /// Raw four-breakpoint constructor (a <= b <= c <= d; a/b may be -inf,
  /// c/d may be +inf).
  static MembershipFunction from_breakpoints(double a, double b, double c,
                                             double d);

  /// Membership grade of x, in [0, 1].
  double grade(double x) const noexcept;

  /// Breakpoint accessors (see class comment for semantics).
  double a() const noexcept { return a_; }
  double b() const noexcept { return b_; }
  double c() const noexcept { return c_; }
  double d() const noexcept { return d_; }

  /// Smallest / largest x with grade > 0 (support). May be +/-infinity.
  double support_lo() const noexcept { return a_; }
  double support_hi() const noexcept { return d_; }

  /// Smallest / largest x with grade == 1 (core). May be +/-infinity.
  double core_lo() const noexcept { return b_; }
  double core_hi() const noexcept { return c_; }

  /// Midpoint of the core; for shoulders the finite end of the plateau.
  /// Used by weighted-average style defuzzifiers.
  double core_center() const noexcept;

  bool is_singleton() const noexcept { return a_ == d_; }
  bool is_triangular() const noexcept { return b_ == c_ && a_ < b_ && c_ < d_; }

  /// Lowest x at which the alpha-cut starts / highest at which it ends.
  /// alpha must be in (0, 1].  For an open shoulder the corresponding side
  /// is +/-infinity.
  double alpha_cut_lo(double alpha) const;
  double alpha_cut_hi(double alpha) const;

  /// Human-readable description, e.g. "tri(30, 60, 90)".
  std::string describe() const;

  friend bool operator==(const MembershipFunction&,
                         const MembershipFunction&) = default;

 private:
  MembershipFunction(double a, double b, double c, double d);

  double a_, b_, c_, d_;
};

std::ostream& operator<<(std::ostream& os, const MembershipFunction& mf);

}  // namespace facsp::fuzzy
