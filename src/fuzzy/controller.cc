#include "fuzzy/controller.h"

#include <algorithm>

#include "common/expects.h"
#include "fuzzy/rule.h"

namespace facsp::fuzzy {

FuzzyController::FuzzyController(std::string name,
                                 std::vector<LinguisticVariable> inputs,
                                 LinguisticVariable output,
                                 std::vector<FuzzyRule> rules,
                                 InferenceOptions inference,
                                 Defuzzifier defuzzifier)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      output_(std::move(output)),
      rules_(std::move(rules), inputs_, output_),
      defuzz_(defuzzifier),
      engine_(std::make_unique<InferenceEngine>(inputs_, output_, rules_,
                                                inference)) {
  // Build the defuzzifier's sample tables for our output variable once;
  // every evaluation then takes the table-driven fast path.
  defuzz_.prime(output_);
}

double FuzzyController::evaluate(std::span<const double> crisp_inputs) const {
  static thread_local InferenceScratch scratch;
  return evaluate_with(scratch, crisp_inputs);
}

double FuzzyController::evaluate(
    std::initializer_list<double> crisp_inputs) const {
  return evaluate(std::span<const double>(crisp_inputs.begin(),
                                          crisp_inputs.size()));
}

double FuzzyController::evaluate_with(
    InferenceScratch& scratch, std::span<const double> crisp_inputs) const {
  engine_->infer_into(crisp_inputs, scratch);
  return defuzz_.defuzzify(scratch.activations,
                           engine_->options().implication, output_,
                           scratch.mu);
}

void FuzzyController::evaluate_batch(std::span<const double> crisp_inputs,
                                     std::span<double> out) const {
  FACSP_EXPECTS_MSG(crisp_inputs.size() == out.size() * inputs_.size(),
                    "batch of " << out.size() << " rows needs "
                                << out.size() * inputs_.size()
                                << " inputs, got " << crisp_inputs.size());
  static thread_local InferenceScratch scratch;
  evaluate_batch_with(scratch, crisp_inputs, out);
}

void FuzzyController::evaluate_batch_with(InferenceScratch& scratch,
                                          std::span<const double> crisp_inputs,
                                          std::span<double> out) const {
  FACSP_EXPECTS_MSG(crisp_inputs.size() == out.size() * inputs_.size(),
                    "batch of " << out.size() << " rows needs "
                                << out.size() * inputs_.size()
                                << " inputs, got " << crisp_inputs.size());
  constexpr std::size_t W = InferenceEngine::kLanes;
  const std::size_t stride = inputs_.size();
  const std::size_t terms = output_.term_count();
  for (std::size_t r0 = 0; r0 < out.size(); r0 += W) {
    const std::size_t rows = std::min(W, out.size() - r0);
    engine_->infer_batch_into(crisp_inputs.subspan(r0 * stride, rows * stride),
                              rows, scratch);
    // Defuzzification stays scalar: gather each lane's activations back into
    // the per-evaluation buffer (same values infer_into() would produce).
    scratch.activations.resize(terms);
    for (std::size_t l = 0; l < rows; ++l) {
      for (std::size_t k = 0; k < terms; ++k)
        scratch.activations[k] = scratch.lane_activations[k * W + l];
      out[r0 + l] = defuzz_.defuzzify(scratch.activations,
                                      engine_->options().implication, output_,
                                      scratch.mu);
    }
  }
}

Explanation FuzzyController::explain(
    std::span<const double> crisp_inputs) const {
  Explanation ex;
  ex.aggregated = engine_->infer_traced(crisp_inputs, ex.fired);
  ex.crisp = defuzz_.defuzzify(ex.aggregated, output_);
  ex.rule_text.reserve(ex.fired.size());
  for (const auto& f : ex.fired)
    ex.rule_text.push_back(to_string(rules_.rule(f.rule_index), inputs_,
                                     output_));
  return ex;
}

const LinguisticVariable& FuzzyController::input(std::size_t i) const {
  FACSP_EXPECTS(i < inputs_.size());
  return inputs_[i];
}

}  // namespace facsp::fuzzy
