#include "fuzzy/controller.h"

#include "common/expects.h"
#include "fuzzy/rule.h"

namespace facsp::fuzzy {

FuzzyController::FuzzyController(std::string name,
                                 std::vector<LinguisticVariable> inputs,
                                 LinguisticVariable output,
                                 std::vector<FuzzyRule> rules,
                                 InferenceOptions inference,
                                 Defuzzifier defuzzifier)
    : name_(std::move(name)),
      inputs_(std::move(inputs)),
      output_(std::move(output)),
      rules_(std::move(rules), inputs_, output_),
      defuzz_(defuzzifier),
      engine_(std::make_unique<InferenceEngine>(inputs_, output_, rules_,
                                                inference)) {}

double FuzzyController::evaluate(std::span<const double> crisp_inputs) const {
  return defuzz_.defuzzify(engine_->infer(crisp_inputs), output_);
}

double FuzzyController::evaluate(
    std::initializer_list<double> crisp_inputs) const {
  return evaluate(std::span<const double>(crisp_inputs.begin(),
                                          crisp_inputs.size()));
}

Explanation FuzzyController::explain(
    std::span<const double> crisp_inputs) const {
  Explanation ex;
  ex.aggregated = engine_->infer_traced(crisp_inputs, ex.fired);
  ex.crisp = defuzz_.defuzzify(ex.aggregated, output_);
  ex.rule_text.reserve(ex.fired.size());
  for (const auto& f : ex.fired)
    ex.rule_text.push_back(to_string(rules_.rule(f.rule_index), inputs_,
                                     output_));
  return ex;
}

const LinguisticVariable& FuzzyController::input(std::size_t i) const {
  FACSP_EXPECTS(i < inputs_.size());
  return inputs_[i];
}

}  // namespace facsp::fuzzy
